/**
 * @file
 * Multi-cell network simulator tests: the acceptance bar is that
 * the `grid-3x3` and `dense-urban-10k` presets run bit-identically
 * at 1, 2 and 8 worker threads; around it, NetworkSpec round-trips
 * its topology/traffic/scheduler keys, the scheduler actually
 * arbitrates (one grant per cell per slot), the full-PHY rung works
 * at conditioned SINR, and the analytic rung tracks it.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/kernels.hh"
#include "sim/multicell_sim.hh"
#include "sim/network_sim.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

std::string
calibrationPath()
{
    return std::string(WILIS_SOURCE_DIR) +
           "/data/network_calibration.txt";
}

void
expectSameStats(const UserStats &a, const UserStats &b, int user)
{
    EXPECT_EQ(a.framesSent, b.framesSent) << "user " << user;
    EXPECT_EQ(a.framesOk, b.framesOk) << "user " << user;
    EXPECT_EQ(a.stalledSlots, b.stalledSlots) << "user " << user;
    EXPECT_EQ(a.retransmissions, b.retransmissions)
        << "user " << user;
    EXPECT_EQ(a.delivered, b.delivered) << "user " << user;
    EXPECT_EQ(a.dropped, b.dropped) << "user " << user;
    EXPECT_EQ(a.goodputBits, b.goodputBits) << "user " << user;
    EXPECT_EQ(a.arrivals, b.arrivals) << "user " << user;
    EXPECT_EQ(a.queueDrops, b.queueDrops) << "user " << user;
    EXPECT_EQ(a.fullPhyFrames, b.fullPhyFrames) << "user " << user;
    EXPECT_EQ(a.analyticFrames, b.analyticFrames)
        << "user " << user;
    EXPECT_EQ(a.servingCell, b.servingCell) << "user " << user;
    EXPECT_EQ(a.handovers, b.handovers) << "user " << user;
    EXPECT_EQ(a.pingPongs, b.pingPongs) << "user " << user;
    EXPECT_EQ(a.joins, b.joins) << "user " << user;
    EXPECT_EQ(a.leaves, b.leaves) << "user " << user;
    EXPECT_EQ(a.goodputBitsPreHo, b.goodputBitsPreHo)
        << "user " << user;
    EXPECT_EQ(a.goodputBitsPostHo, b.goodputBitsPostHo)
        << "user " << user;
    EXPECT_EQ(a.preHoSlots, b.preHoSlots) << "user " << user;
    EXPECT_EQ(a.postHoSlots, b.postHoSlots) << "user " << user;
    EXPECT_DOUBLE_EQ(a.meanSnrDb, b.meanSnrDb) << "user " << user;
    // Per-user statistics accumulate sequentially inside one cell's
    // work item, so even the floating-point moments are
    // bit-identical.
    EXPECT_EQ(a.latencySlots.count(), b.latencySlots.count())
        << "user " << user;
    EXPECT_EQ(a.latencySlots.mean(), b.latencySlots.mean())
        << "user " << user;
    EXPECT_EQ(a.queueWaitSlots.mean(), b.queueWaitSlots.mean())
        << "user " << user;
    EXPECT_EQ(a.sinrDb.count(), b.sinrDb.count())
        << "user " << user;
    EXPECT_EQ(a.sinrDb.mean(), b.sinrDb.mean()) << "user " << user;
    EXPECT_EQ(a.sinrDb.variance(), b.sinrDb.variance())
        << "user " << user;
    for (int bin = 0; bin < a.latencyHist.numBins(); ++bin)
        EXPECT_EQ(a.latencyHist.count(bin), b.latencyHist.count(bin))
            << "user " << user << " latency bin " << bin;
    for (int bin = 0; bin < a.rateHist.numBins(); ++bin)
        EXPECT_EQ(a.rateHist.count(bin), b.rateHist.count(bin))
            << "user " << user << " rate bin " << bin;
}

void
expectThreadCountInvariant(const NetworkSpec &spec,
                           std::uint64_t slots)
{
    NetworkSim sim(spec);
    NetworkResult t1 = sim.run(slots, 1);
    NetworkResult t2 = sim.run(slots, 2);
    NetworkResult t8 = sim.run(slots, 8);

    ASSERT_EQ(t1.users.size(),
              static_cast<size_t>(spec.numUsers));
    ASSERT_EQ(t2.users.size(), t1.users.size());
    ASSERT_EQ(t8.users.size(), t1.users.size());
    for (int u = 0; u < spec.numUsers; ++u) {
        expectSameStats(t1.users[static_cast<size_t>(u)],
                        t2.users[static_cast<size_t>(u)], u);
        expectSameStats(t1.users[static_cast<size_t>(u)],
                        t8.users[static_cast<size_t>(u)], u);
    }
    expectSameStats(t1.aggregate, t2.aggregate, -1);
    expectSameStats(t1.aggregate, t8.aggregate, -1);
}

} // namespace

// ----------------------------------------------------- spec layer

TEST(MulticellSpec, TopologyTrafficSchedulerKeysRoundTrip)
{
    NetworkSpec s;
    s.numUsers = 24;
    s.topology.rows = 2;
    s.topology.cols = 4;
    s.topology.cellSpacingM = 300.0;
    s.topology.cellRadiusM = 140.0;
    s.topology.minDistanceM = 15.0;
    s.topology.pathloss.refSnrDb = 47.0;
    s.topology.pathloss.refDistanceM = 12.0;
    s.topology.pathloss.exponent = 3.2;
    s.topology.pathloss.shadowSigmaDb = 5.0;
    s.traffic.kind = mac::TrafficKind::OnOff;
    s.traffic.load = 0.7;
    s.traffic.onSlots = 20.0;
    s.traffic.offSlots = 50.0;
    s.traffic.queueLimit = 32;
    s.scheduler.kind = mac::SchedulerKind::ProportionalFair;
    s.scheduler.pfHorizonSlots = 48.0;

    NetworkSpec t = NetworkSpec::fromConfig(s.toConfig());
    EXPECT_EQ(t.topology.rows, 2);
    EXPECT_EQ(t.topology.cols, 4);
    EXPECT_TRUE(t.multicell());
    EXPECT_DOUBLE_EQ(t.topology.cellSpacingM, 300.0);
    EXPECT_DOUBLE_EQ(t.topology.cellRadiusM, 140.0);
    EXPECT_DOUBLE_EQ(t.topology.minDistanceM, 15.0);
    EXPECT_DOUBLE_EQ(t.topology.pathloss.refSnrDb, 47.0);
    EXPECT_DOUBLE_EQ(t.topology.pathloss.refDistanceM, 12.0);
    EXPECT_DOUBLE_EQ(t.topology.pathloss.exponent, 3.2);
    EXPECT_DOUBLE_EQ(t.topology.pathloss.shadowSigmaDb, 5.0);
    EXPECT_EQ(t.traffic.kind, mac::TrafficKind::OnOff);
    EXPECT_DOUBLE_EQ(t.traffic.load, 0.7);
    EXPECT_DOUBLE_EQ(t.traffic.onSlots, 20.0);
    EXPECT_DOUBLE_EQ(t.traffic.offSlots, 50.0);
    EXPECT_EQ(t.traffic.queueLimit, 32);
    EXPECT_EQ(t.scheduler.kind,
              mac::SchedulerKind::ProportionalFair);
    EXPECT_DOUBLE_EQ(t.scheduler.pfHorizonSlots, 48.0);
}

TEST(MulticellSpec, PresetsAreRegisteredAndMulticell)
{
    for (const char *name :
         {"grid-3x3", "dense-urban-10k", "urban-mobile"})
        EXPECT_TRUE(hasNetworkPreset(name)) << name;
    NetworkSpec mobile = networkPreset("urban-mobile");
    EXPECT_TRUE(mobile.multicell());
    EXPECT_TRUE(mobile.mobility.enabled());
    EXPECT_EQ(mobile.mobility.model, MobilityModel::Waypoint);
    NetworkSpec grid = networkPreset("grid-3x3");
    EXPECT_EQ(grid.topology.numCells(), 9);
    EXPECT_EQ(grid.numUsers, 36);
    EXPECT_TRUE(grid.multicell());
    EXPECT_EQ(grid.fidelity.mode, FidelityMode::Analytic);
    NetworkSpec dense = networkPreset("dense-urban-10k");
    EXPECT_EQ(dense.topology.numCells(), 100);
    EXPECT_GE(dense.numUsers, 10000);
    EXPECT_EQ(dense.scheduler.kind,
              mac::SchedulerKind::ProportionalFair);
    EXPECT_EQ(dense.traffic.kind, mac::TrafficKind::OnOff);
}

TEST(MulticellSpec, DefaultSpecStaysOnTheLegacySingleCellPath)
{
    NetworkSpec s;
    EXPECT_FALSE(s.multicell());
    EXPECT_EQ(s.topology.numCells(), 1);
    NetworkSim sim(s);
    EXPECT_EQ(sim.topology(), nullptr);
}

// ---------------------------------------- determinism (the bar)

TEST(Multicell, Grid3x3BitIdenticalAt1_2_8Threads)
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    expectThreadCountInvariant(spec, 120);
}

TEST(Multicell, DenseUrban10kBitIdenticalAt1_2_8Threads)
{
    NetworkSpec spec = networkPreset("dense-urban-10k");
    spec.calibrationFile = calibrationPath();
    expectThreadCountInvariant(spec, 16);
}

TEST(Multicell, FullPhyRungBitIdenticalAt1_2_8Threads)
{
    // The bit-exact rung at conditioned SINR: a small grid so the
    // PHY cost stays test-sized.
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.numUsers = 8;
    spec.topology.rows = 2;
    spec.topology.cols = 2;
    spec.link.payloadBits = 400;
    spec.fidelity.mode = FidelityMode::Full;
    spec.calibrationFile.clear();
    expectThreadCountInvariant(spec, 40);
}

// ------------------------------------- SoA / per-user equivalence

namespace {

void
expectSameResult(const NetworkResult &a, const NetworkResult &b)
{
    ASSERT_EQ(a.users.size(), b.users.size());
    for (size_t u = 0; u < a.users.size(); ++u)
        expectSameStats(a.users[u], b.users[u],
                        static_cast<int>(u));
    expectSameStats(a.aggregate, b.aggregate, -1);
}

} // namespace

TEST(Multicell, EngineKeyRoundTripsAndRejectsUnknown)
{
    NetworkSpec s = networkPreset("grid-3x3");
    EXPECT_EQ("auto", s.engine);
    s.engine = "peruser";
    NetworkSpec t = NetworkSpec::fromConfig(s.toConfig());
    EXPECT_EQ("peruser", t.engine);
    li::Config bad = s.toConfig();
    bad.set("engine", "vectorized");
    EXPECT_DEATH(NetworkSpec::fromConfig(bad),
                 "unknown multi-cell engine");
}

TEST(Multicell, SoaEngineMatchesPerUserEngine)
{
    // The acceptance property of the SoA refactor: both engines
    // produce the same NetworkResult bit-for-bit, including
    // floating-point moments, on a mixed RR/PF x fidelity grid.
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    for (auto kind : {mac::SchedulerKind::RoundRobin,
                      mac::SchedulerKind::ProportionalFair}) {
        spec.scheduler.kind = kind;
        NetworkSpec per = spec;
        per.engine = "peruser";
        NetworkSpec soa = spec;
        soa.engine = "soa";
        NetworkResult r_per = NetworkSim(per).run(120, 2);
        NetworkResult r_soa = NetworkSim(soa).run(120, 2);
        expectSameResult(r_per, r_soa);
        // "auto" must resolve to the SoA engine.
        NetworkResult r_auto = NetworkSim(spec).run(120, 2);
        expectSameResult(r_per, r_auto);
    }
}

TEST(Multicell, SoaEngineMatchesPerUserOnFullPhyRung)
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.numUsers = 8;
    spec.topology.rows = 2;
    spec.topology.cols = 2;
    spec.link.payloadBits = 400;
    spec.fidelity.mode = FidelityMode::Full;
    spec.calibrationFile.clear();
    NetworkSpec per = spec;
    per.engine = "peruser";
    NetworkResult r_per = NetworkSim(per).run(40, 2);
    NetworkResult r_soa = NetworkSim(spec).run(40, 2);
    expectSameResult(r_per, r_soa);
}

TEST(Multicell, SoaCacheReuseDoesNotChangeResults)
{
    // NetworkSim keeps the SoA engine's derived state across run()
    // calls; a rerun on a warm cache must be bit-identical to the
    // cold first run.
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    NetworkSim sim(spec);
    NetworkResult cold = sim.run(100, 2);
    NetworkResult warm = sim.run(100, 2);
    expectSameResult(cold, warm);
}

/**
 * The dense-urban-10k acceptance bar of the SoA refactor, pinned
 * under the forced scalar kernel backend: the batched engine must
 * reproduce the per-user engine's UserStats bit-for-bit for every
 * one of the 10k+ users. Cross-backend exactness of the kernels
 * themselves is pinned in test_simd_kernels.cc, so scalar here
 * extends to every backend by transitivity.
 */
TEST(Multicell, SoaMatchesPerUserOnDenseUrban10kScalarBackend)
{
    struct RestoreBackend {
        ~RestoreBackend()
        {
            kernels::setBackend(
                kernels::availableBackends().back());
        }
    } restore;
    ASSERT_TRUE(kernels::setBackend(kernels::Backend::Scalar));

    NetworkSpec spec = networkPreset("dense-urban-10k");
    spec.calibrationFile = calibrationPath();
    NetworkSpec per = spec;
    per.engine = "peruser";
    NetworkResult r_per = NetworkSim(per).run(16, 2);
    NetworkResult r_soa = NetworkSim(spec).run(16, 2);
    expectSameResult(r_per, r_soa);
}

// ------------------------------------------------ engine behavior

TEST(Multicell, SchedulerArbitratesOneGrantPerCellPerSlot)
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    // Full-buffer traffic: every cell is always backlogged, so the
    // grant count is exactly cells x slots -- the scheduler, not
    // the per-user loop, owns the medium.
    spec.traffic.kind = mac::TrafficKind::FullBuffer;
    const std::uint64_t slots = 100;
    NetworkSim sim(spec);
    NetworkResult res = sim.run(slots, 2);
    EXPECT_EQ(res.cells, 9);
    EXPECT_EQ(res.aggregate.framesSent, 9 * slots);
    // Round robin over equal-population cells: per-user grants are
    // exactly fair.
    for (const UserStats &u : res.users)
        EXPECT_EQ(u.framesSent, slots / 4) << "user " << u.user;
}

TEST(Multicell, TopologyDrivesPerUserLinkBudgets)
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    NetworkSim sim(spec);
    const Topology *topo = sim.topology();
    ASSERT_NE(topo, nullptr);
    EXPECT_EQ(topo->numUsers(), 36);
    EXPECT_EQ(topo->numCells(), 9);

    NetworkResult res = sim.run(60, 2);
    bool snrs_differ = false;
    for (const UserStats &u : res.users) {
        EXPECT_EQ(u.servingCell, topo->servingCell(u.user));
        EXPECT_DOUBLE_EQ(u.meanSnrDb,
                         topo->servingSnrDb(u.user));
        snrs_differ |= u.meanSnrDb != res.users[0].meanSnrDb;
    }
    EXPECT_TRUE(snrs_differ)
        << "placement + shadowing must differentiate users";
    // Transmissions happened and observed interference: recorded
    // SINR must sit below the noise-limited serving SNR on
    // average for at least the cell-edge users.
    ASSERT_GT(res.aggregate.sinrDb.count(), 0u);
    EXPECT_LT(res.aggregate.sinrDb.mean(),
              res.aggregate.meanSnrDb + 40.0);
}

TEST(Multicell, AnalyticRungTracksFullPhy)
{
    // Same small deployment through both fidelity rungs: per-frame
    // outcomes differ (different randomness) but the aggregate
    // frame success rate must agree within sampling tolerance --
    // the calibrated-table-at-SINR argument of the fidelity
    // ladder, now with interference folded in.
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.numUsers = 12;
    spec.topology.rows = 2;
    spec.topology.cols = 2;
    spec.link.payloadBits = 1000;
    spec.traffic.kind = mac::TrafficKind::FullBuffer;
    spec.calibrationFile = calibrationPath();

    NetworkSpec full = spec;
    full.fidelity.mode = FidelityMode::Full;
    NetworkSpec fast = spec;
    fast.fidelity.mode = FidelityMode::Analytic;

    const std::uint64_t slots = 150;
    NetworkResult r_full = NetworkSim(full).run(slots, 2);
    NetworkResult r_fast = NetworkSim(fast).run(slots, 2);

    EXPECT_EQ(r_full.aggregate.fullPhyFrames,
              r_full.aggregate.framesSent);
    EXPECT_EQ(r_fast.aggregate.analyticFrames,
              r_fast.aggregate.framesSent);
    EXPECT_EQ(r_full.aggregate.framesSent,
              r_fast.aggregate.framesSent)
        << "scheduling is fidelity-independent";
    EXPECT_NEAR(r_fast.aggregate.frameSuccessRate(),
                r_full.aggregate.frameSuccessRate(), 0.12);
}

TEST(Multicell, QueuesAccountArrivalsDropsAndWaits)
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    // Overload one small deployment so queues saturate.
    spec.numUsers = 8;
    spec.topology.rows = 2;
    spec.topology.cols = 2;
    spec.traffic.kind = mac::TrafficKind::Poisson;
    spec.traffic.load = 1.5;
    spec.traffic.queueLimit = 4;
    NetworkResult res = NetworkSim(spec).run(200, 2);
    EXPECT_GT(res.aggregate.arrivals, 0u);
    EXPECT_GT(res.aggregate.queueDrops, 0u)
        << "4-deep queues under 3x overload must drop";
    EXPECT_GT(res.aggregate.queueWaitSlots.count(), 0u);
    EXPECT_GT(res.aggregate.queueWaitSlots.mean(), 0.5);
    EXPECT_LT(res.aggregate.queueDrops, res.aggregate.arrivals);
}
