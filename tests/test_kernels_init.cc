/**
 * @file
 * Regression test for the kernel-dispatch first-use race: a lazy
 * ops() initialization racing a concurrent explicit setBackend()
 * must never stomp the user-forced table with the env-derived
 * default. This suite must be its own binary -- the race only
 * exists while the process-wide table is still unset, so the
 * hammering below has to be the first kernel-layer touch.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/kernels.hh"

using namespace wilis;

TEST(KernelsInit, LazyInitNeverStompsAConcurrentSetBackend)
{
    // Keep the env out of the picture: initialTable() must derive
    // the host default, the path that used to overwrite.
    ::unsetenv("WILIS_KERNEL_BACKEND");

    std::atomic<bool> go{false};
    std::atomic<bool> set_ok{false};
    std::vector<std::thread> readers;
    for (int i = 0; i < 4; ++i) {
        readers.emplace_back([&] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int k = 0; k < 256; ++k)
                (void)kernels::ops();
        });
    }
    std::thread setter([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        set_ok.store(kernels::setBackend(kernels::Backend::Scalar));
    });
    go.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();
    setter.join();

    // Whatever the interleaving, the explicit selection stands:
    // first-use init may install the default only while no backend
    // has been chosen, never on top of one.
    EXPECT_TRUE(set_ok.load());
    EXPECT_EQ(kernels::activeBackend(), kernels::Backend::Scalar);
    EXPECT_EQ(kernels::ops().backend, kernels::Backend::Scalar);
}

TEST(KernelsInit, AutoPolicyKeepsTheExplicitSelection)
{
    // Ordered after the race test in this binary: scalar is forced;
    // an "auto" scenario policy must not reset it to the default.
    kernels::KernelPolicy policy;
    policy.backend = "auto";
    EXPECT_EQ(kernels::applyPolicy(policy),
              kernels::Backend::Scalar);
}
