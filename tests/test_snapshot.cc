/**
 * @file
 * Snapshot-layer tests: the binary transport validates its header
 * (magic / container / payload version / spec fingerprint) and every
 * bounds-checked read, and the engine-level checkpoint/resume is a
 * pure observer -- a run that saves checkpoints, and a run resumed
 * from one, both produce byte-identical campaign reports and packet
 * traces vs an uninterrupted run, across 1/2/8 threads, both
 * multi-cell engines, and a cross-engine save/resume pair.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/snapshot.hh"
#include "sim/campaign.hh"
#include "sim/scenario.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

std::string
calibrationPath()
{
    return std::string(WILIS_SOURCE_DIR) +
           "/data/network_calibration.txt";
}

/** A small mobile deployment: handover + churn on a 2x2 grid. */
NetworkSpec
mobileSpec(const std::string &engine)
{
    NetworkSpec spec = networkPreset("urban-mobile");
    spec.calibrationFile = calibrationPath();
    spec.numUsers = 24;
    spec.topology.rows = 2;
    spec.topology.cols = 2;
    spec.engine = engine;
    return spec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** One run through the campaign entry point: report + trace text. */
struct RunArtifacts {
    std::string report;
    std::string trace;
};

RunArtifacts
runOnce(const NetworkSpec &spec, std::uint64_t slots, int threads)
{
    const std::string trace_file = ::testing::TempDir() +
                                   "wilis_snapshot_trace.txt";
    RunRequest req;
    req.spec = spec;
    req.slots = slots;
    req.threads = threads;
    req.traceFile = trace_file;
    RunReport rep = runCampaignShard(req);
    // The config echo names the run's own checkpoint/engine keys;
    // blank it so report comparisons isolate the *results* (the
    // checkpointed, resumed and uninterrupted runs intentionally
    // differ in those keys).
    rep.config.clear();
    RunArtifacts out;
    out.report = rep.toJsonText();
    out.trace = slurp(trace_file);
    std::remove(trace_file.c_str());
    return out;
}

} // namespace

// ----------------------------------------------------- transport

TEST(Snapshot, RoundTripsPrimitives)
{
    SnapshotWriter w(7, "spec-fp");
    w.marker(0x11223344);
    w.u8(200);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f64(-1234.5678e-9);
    w.str("hello snapshot");
    w.marker(0x55667788);

    SnapshotReader r =
        SnapshotReader::fromBytes(w.bytes(), 7, "spec-fp");
    r.marker(0x11223344);
    EXPECT_EQ(r.u8(), 200);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), -1234.5678e-9);
    EXPECT_EQ(r.str(), "hello snapshot");
    r.marker(0x55667788);
    r.done();
}

TEST(Snapshot, SaveLoadRoundTripsThroughDisk)
{
    const std::string path =
        ::testing::TempDir() + "wilis_snapshot_file.snap";
    SnapshotWriter w(3, "fp");
    w.u64(99);
    w.save(path);

    SnapshotReader r(path, 3, "fp");
    EXPECT_EQ(r.u64(), 99u);
    r.done();
    std::remove(path.c_str());
}

TEST(SnapshotDeath, RejectsVersionAndFingerprintSkew)
{
    SnapshotWriter w(1, "fp-a");
    w.u64(1);
    EXPECT_DEATH(SnapshotReader::fromBytes(w.bytes(), 2, "fp-a"),
                 "version");
    EXPECT_DEATH(SnapshotReader::fromBytes(w.bytes(), 1, "fp-b"),
                 "different spec");
}

TEST(SnapshotDeath, RejectsTruncationAndTrailingBytes)
{
    SnapshotWriter w(1, "fp");
    w.u64(1);
    w.u64(2);
    const std::string bytes = w.bytes();

    SnapshotReader trunc = SnapshotReader::fromBytes(
        bytes.substr(0, bytes.size() - 4), 1, "fp");
    trunc.u64();
    EXPECT_DEATH(trunc.u64(), "truncated");

    SnapshotReader leftover =
        SnapshotReader::fromBytes(bytes, 1, "fp");
    leftover.u64();
    EXPECT_DEATH(leftover.done(), "");
}

TEST(SnapshotDeath, RejectsMissingFileAndMarkerSkew)
{
    EXPECT_DEATH(
        SnapshotReader("/nonexistent/wilis.snap", 1, "fp"), "");

    SnapshotWriter w(1, "fp");
    w.marker(0xAAAAAAAA);
    SnapshotReader r = SnapshotReader::fromBytes(w.bytes(), 1, "fp");
    EXPECT_DEATH(r.marker(0xBBBBBBBB), "marker");
}

// ------------------------------------------- checkpoint / resume

TEST(CheckpointResume, BitIdenticalAcrossThreadsAndEngines)
{
    constexpr std::uint64_t kSlots = 200;
    constexpr std::uint64_t kEvery = 100;

    for (const char *engine : {"soa", "peruser"}) {
        SCOPED_TRACE(engine);
        const NetworkSpec base = mobileSpec(engine);
        const RunArtifacts reference = runOnce(base, kSlots, 2);
        const std::string ckpt = ::testing::TempDir() +
                                 "wilis_ckpt_" +
                                 std::string(engine) + ".snap";

        // A run that *saves* checkpoints is a pure observer: same
        // report, same trace.
        NetworkSpec saving = base;
        saving.checkpoint.file = ckpt;
        saving.checkpoint.everySlots = kEvery;
        const RunArtifacts observed = runOnce(saving, kSlots, 2);
        EXPECT_EQ(observed.report, reference.report);
        EXPECT_EQ(observed.trace, reference.trace);

        // Resuming from the slot-100 snapshot must replay slots
        // 100..200 into byte-identical artifacts, at any thread
        // count.
        NetworkSpec resuming = base;
        resuming.checkpoint.file = ckpt;
        resuming.checkpoint.resume = true;
        for (int threads : {1, 2, 8}) {
            SCOPED_TRACE(threads);
            const RunArtifacts resumed =
                runOnce(resuming, kSlots, threads);
            EXPECT_EQ(resumed.report, reference.report);
            EXPECT_EQ(resumed.trace, reference.trace);
        }
        std::remove(ckpt.c_str());
    }
}

TEST(CheckpointResume, SnapshotResumesUnderTheOtherEngine)
{
    constexpr std::uint64_t kSlots = 160;
    const RunArtifacts reference =
        runOnce(mobileSpec("soa"), kSlots, 2);
    const std::string ckpt =
        ::testing::TempDir() + "wilis_ckpt_cross.snap";

    // Save under SoA; the canonical serialization order (global
    // user id / cell index) is engine-neutral, so the per-user
    // engine must resume it bit-identically.
    NetworkSpec saving = mobileSpec("soa");
    saving.checkpoint.file = ckpt;
    saving.checkpoint.everySlots = 80;
    runOnce(saving, kSlots, 2);

    NetworkSpec resuming = mobileSpec("peruser");
    resuming.checkpoint.file = ckpt;
    resuming.checkpoint.resume = true;
    const RunArtifacts resumed = runOnce(resuming, kSlots, 2);
    EXPECT_EQ(resumed.report, reference.report);
    EXPECT_EQ(resumed.trace, reference.trace);
    std::remove(ckpt.c_str());
}

TEST(CheckpointResumeDeath, ResumeWithoutSnapshotIsFatal)
{
    NetworkSpec spec = mobileSpec("soa");
    spec.checkpoint.file =
        ::testing::TempDir() + "wilis_ckpt_absent.snap";
    spec.checkpoint.resume = true;
    RunRequest req;
    req.spec = spec;
    req.slots = 40;
    req.threads = 1;
    EXPECT_DEATH(runCampaignShard(req), "");
}
