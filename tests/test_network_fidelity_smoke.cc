/**
 * @file
 * Fast network-fidelity smoke: the committed calibration table
 * (data/network_calibration.txt) loads, matches the geometry the
 * cell presets derive (so preset changes force a regeneration), and
 * drives a small analytic cell to sane system-level numbers; a
 * couple of its waterfall cells are cross-checked against freshly
 * measured full-PHY frames. This is the cheap every-push guard in
 * front of the slow test_link_fidelity validation suite.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/network_sim.hh"
#include "sim/sweep.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

std::string
committedTablePath()
{
    return std::string(WILIS_SOURCE_DIR) +
           "/data/network_calibration.txt";
}

std::shared_ptr<const softphy::CalibrationTable>
committedTable()
{
    static std::shared_ptr<const softphy::CalibrationTable> table =
        std::make_shared<const softphy::CalibrationTable>(
            softphy::CalibrationTable::load(committedTablePath()));
    return table;
}

} // namespace

TEST(NetworkFidelitySmoke, CommittedTableMatchesPresetGeometry)
{
    std::shared_ptr<const softphy::CalibrationTable> t =
        committedTable();
    const softphy::CalibrationTable::BuildSpec want =
        NetworkSim::calibrationBuildSpec(networkPreset("cell-16"));

    // If this fails, a preset or receiver default moved: regenerate
    // with ./build/build_calibration data/network_calibration.txt
    EXPECT_EQ(t->channelKind(), want.channel);
    EXPECT_EQ(t->decoder(), want.rx.decoder);
    EXPECT_EQ(t->softWidth(), want.rx.demapper.softWidth);
    EXPECT_EQ(t->payloadBits(), want.payloadBits);
    EXPECT_EQ(t->numBins(), want.numBins);
    EXPECT_DOUBLE_EQ(t->snrLoDb(), want.snrLoDb);
    EXPECT_DOUBLE_EQ(t->snrStepDb(), want.snrStepDb);

    // Physics sanity: PER decreases with SNR and increases with
    // rate across the calibrated range.
    for (int r = 0; r < phy::kNumRates; ++r) {
        EXPECT_GE(t->per(r, t->snrLoDb()), 0.9) << "rate " << r;
        EXPECT_LE(t->per(r, t->binCenterDb(t->numBins() - 1)), 0.1)
            << "rate " << r;
    }
    EXPECT_GT(t->per(7, 14.0), t->per(2, 14.0));
}

TEST(NetworkFidelitySmoke, CommittedCellsMatchFreshMeasurements)
{
    std::shared_ptr<const softphy::CalibrationTable> t =
        committedTable();

    // Re-measure two waterfall-region cells with independent seeds;
    // the committed table must agree within binomial tolerance.
    struct Probe {
        phy::RateIndex rate;
        int bin;
    };
    for (const Probe &probe :
         {Probe{2, t->binOf(3.0)}, Probe{4, t->binOf(7.0)}}) {
        const std::uint64_t packets = 32;
        ScenarioSpec scen;
        scen.rate = probe.rate;
        scen.channel = t->channelKind();
        scen.channelCfg.set(
            "snr_db",
            strprintf("%.17g", t->binCenterDb(probe.bin)));
        scen.channelCfg.set("seed", "13579");
        scen.payloadBits = t->payloadBits();
        scen.payloadSeed = 0x5EEDF00D;

        std::uint64_t bad = 0;
        sweepFrames(scen, packets, 2,
                    [&](int, const FrameResult &res, std::uint64_t) {
                        bad += res.ok ? 0 : 1;
                    });
        const double measured =
            static_cast<double>(bad) / static_cast<double>(packets);
        const double committed = t->cell(probe.rate, probe.bin).per();
        const double sigma = std::sqrt(
            measured * (1.0 - measured) / packets +
            committed * (1.0 - committed) /
                static_cast<double>(t->packetsPerCell()));
        EXPECT_NEAR(committed, measured, 4.0 * sigma + 0.15)
            << "rate " << probe.rate << " bin " << probe.bin;
    }
}

TEST(NetworkFidelitySmoke, SmallAnalyticRunFromTheCommittedTable)
{
    NetworkSpec spec = networkPreset("cell-16");
    spec.fidelity.mode = FidelityMode::Analytic;
    spec.calibrationFile = committedTablePath();
    spec.snrSpreadDb = 6.0;
    const std::uint64_t slots = 64;

    NetworkSim sim(spec);
    ASSERT_NE(sim.calibration(), nullptr);
    NetworkResult res = sim.run(slots, 2);

    EXPECT_EQ(res.aggregate.framesSent +
                  res.aggregate.stalledSlots,
              slots * static_cast<std::uint64_t>(spec.numUsers));
    EXPECT_EQ(res.aggregate.analyticFrames,
              res.aggregate.framesSent)
        << "analytic mode must never run the full PHY";
    EXPECT_EQ(res.aggregate.fullPhyFrames, 0u);
    EXPECT_GT(res.aggregate.delivered, 0u);
    EXPECT_GT(res.aggregateGoodputMbps(), 0.0);
    // A 14 +- 6 dB cell at QPSK-1/2 start with adaptation: mostly
    // clean frames, but not error-free.
    EXPECT_GT(res.aggregate.frameSuccessRate(), 0.6);
    EXPECT_LT(res.aggregate.frameSuccessRate(), 1.0);

    // Determinism of the analytic draws across thread counts.
    NetworkResult re = sim.run(slots, 1);
    EXPECT_EQ(re.aggregate.framesOk, res.aggregate.framesOk);
    EXPECT_EQ(re.aggregate.goodputBits, res.aggregate.goodputBits);
}
