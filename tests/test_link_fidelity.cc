/**
 * @file
 * Hybrid-fidelity validation suite. The analytic fast path is only
 * admissible if it is *validated*, not just wired, so this file
 * pins:
 *  - the calibration table against fresh bit-exact PHY measurements
 *    per (rate, SNR bin), with independent seeds;
 *  - per-user PER and goodput of `analytic` against `full` on the
 *    cell-16 and cell-mobile presets (rate pinned, so the
 *    comparison is a clean per-link error-process check);
 *  - bit-identical results at 1/2/8 worker threads in `auto` mode
 *    (the mixed-fidelity schedule must be a pure function of the
 *    slot index, never of the sharding);
 *  - the NetworkSpec fidelity-key config round-trip and the
 *    calibration table serialize/parse round-trip.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.hh"
#include "sim/link_fidelity.hh"
#include "sim/network_sim.hh"
#include "sim/sweep.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

/** Small, test-sized calibration geometry shared by the suite. */
softphy::CalibrationTable::BuildSpec
testBuildSpec()
{
    softphy::CalibrationTable::BuildSpec b;
    b.payloadBits = 400;
    // Cover the full window the 14 +- 8 dB test cells can reach
    // ([-12, 30] dB, what calibrationBuildSpec would derive), so no
    // lookup leaves the calibrated range.
    b.snrLoDb = -12.0;
    b.snrStepDb = 2.0;
    b.numBins = 21;
    b.packetsPerCell = 48;
    b.threads = 2;
    return b;
}

/** The shared table: built once, reused across the suite. */
std::shared_ptr<const softphy::CalibrationTable>
sharedTable()
{
    static std::shared_ptr<const softphy::CalibrationTable> table =
        std::make_shared<const softphy::CalibrationTable>(
            softphy::CalibrationTable::build(testBuildSpec()));
    return table;
}

/** Test cell matching the table geometry, rate pinned. */
NetworkSpec
fidelityCell(const char *preset, int users)
{
    NetworkSpec s = networkPreset(preset);
    s.numUsers = users;
    s.link.payloadBits = 400;
    s.snrSpreadDb = 8.0;
    s.seed = 0xF1DE;
    // Pin SoftRate: pber can never leave [0, 2], so the rate stays
    // put and the PER comparison isolates the link error process
    // from adaptation-trajectory divergence.
    s.pberLo = 0.0;
    s.pberHi = 2.0;
    return s;
}

} // namespace

// ------------------------------------------------ policy schedule

TEST(FidelityPolicy, ScheduleIsAPureSlotFunction)
{
    FidelityPolicy p;
    p.mode = FidelityMode::Auto;
    p.warmupSlots = 4;
    p.refreshPeriod = 8;
    p.refreshSlots = 2;

    // Warm-up prefix, then 2-of-8 refresh windows.
    for (std::uint64_t t = 0; t < 4; ++t)
        EXPECT_TRUE(p.fullPhySlot(t)) << "warmup slot " << t;
    for (std::uint64_t t : {4ull, 5ull, 12ull, 13ull, 20ull})
        EXPECT_TRUE(p.fullPhySlot(t)) << "refresh slot " << t;
    for (std::uint64_t t : {6ull, 7ull, 8ull, 11ull, 14ull, 19ull})
        EXPECT_FALSE(p.fullPhySlot(t)) << "analytic slot " << t;

    p.mode = FidelityMode::Full;
    EXPECT_TRUE(p.fullPhySlot(1000));
    p.mode = FidelityMode::Analytic;
    EXPECT_FALSE(p.fullPhySlot(0));

    // Degenerate auto schedules never refresh after warm-up.
    p.mode = FidelityMode::Auto;
    p.refreshSlots = 0;
    EXPECT_FALSE(p.fullPhySlot(100));
}

TEST(FidelityPolicy, ModeNamesRoundTrip)
{
    for (FidelityMode m : {FidelityMode::Full, FidelityMode::Analytic,
                           FidelityMode::Auto})
        EXPECT_EQ(fidelityModeFromName(fidelityModeName(m)), m);
}

// ------------------------------------------------- config plumbing

TEST(NetworkSpecFidelity, ConfigRoundTrips)
{
    NetworkSpec s;
    s.fidelity.mode = FidelityMode::Auto;
    s.fidelity.warmupSlots = 7;
    s.fidelity.refreshPeriod = 31;
    s.fidelity.refreshSlots = 3;
    s.calibrationFile = "data/network_calibration.txt";

    NetworkSpec t = NetworkSpec::fromConfig(s.toConfig());
    EXPECT_EQ(t.fidelity.mode, FidelityMode::Auto);
    EXPECT_EQ(t.fidelity.warmupSlots, 7u);
    EXPECT_EQ(t.fidelity.refreshPeriod, 31u);
    EXPECT_EQ(t.fidelity.refreshSlots, 3u);
    EXPECT_EQ(t.calibrationFile, s.calibrationFile);

    // Defaults stay full-fidelity with no calibration file key.
    NetworkSpec d = NetworkSpec::fromConfig(li::Config());
    EXPECT_EQ(d.fidelity.mode, FidelityMode::Full);
    EXPECT_TRUE(d.calibrationFile.empty());
    EXPECT_FALSE(d.toConfig().has("calibration_file"));
}

TEST(NetworkSpecFidelity, PresetsUseTheLadder)
{
    EXPECT_EQ(networkPreset("cell-1k").fidelity.mode,
              FidelityMode::Analytic);
    EXPECT_EQ(networkPreset("cell-1k").numUsers, 1024);
    EXPECT_EQ(networkPreset("dense-analytic").fidelity.mode,
              FidelityMode::Analytic);
    EXPECT_EQ(networkPreset("cell-auto").fidelity.mode,
              FidelityMode::Auto);
    EXPECT_EQ(networkPreset("cell-16").fidelity.mode,
              FidelityMode::Full);
}

// ------------------------------------------- table serialization

TEST(CalibrationTable, SerializeParseRoundTripsExactly)
{
    std::shared_ptr<const softphy::CalibrationTable> t =
        sharedTable();
    softphy::CalibrationTable u =
        softphy::CalibrationTable::parse(t->serialize());

    EXPECT_EQ(u.channelKind(), t->channelKind());
    EXPECT_EQ(u.decoder(), t->decoder());
    EXPECT_EQ(u.softWidth(), t->softWidth());
    EXPECT_EQ(u.payloadBits(), t->payloadBits());
    EXPECT_EQ(u.packetsPerCell(), t->packetsPerCell());
    EXPECT_EQ(u.seed(), t->seed());
    EXPECT_EQ(u.numBins(), t->numBins());
    EXPECT_DOUBLE_EQ(u.snrLoDb(), t->snrLoDb());
    EXPECT_DOUBLE_EQ(u.snrStepDb(), t->snrStepDb());
    for (int r = 0; r < phy::kNumRates; ++r) {
        for (int b = 0; b < t->numBins(); ++b) {
            const softphy::CalibrationCell &a = t->cell(r, b);
            const softphy::CalibrationCell &c = u.cell(r, b);
            EXPECT_EQ(a.frames, c.frames);
            EXPECT_EQ(a.ok, c.ok);
            // %.17g round-trips doubles bit-exactly.
            EXPECT_EQ(a.sumPber, c.sumPber);
            EXPECT_EQ(a.sumLogPberOk, c.sumLogPberOk);
            EXPECT_EQ(a.sumLogPberBad, c.sumLogPberBad);
        }
    }
}

// ------------------------------------------- batched draw sibling

TEST(LinkFidelity, DrawBatchMatchesDrawAtBitForBit)
{
    std::shared_ptr<const softphy::CalibrationTable> t =
        sharedTable();
    const softphy::FlatCalibration flat = t->flatten();

    SplitMix64 rng(0xD4A3);
    const size_t n = 97;
    std::vector<std::int32_t> rates(n);
    std::vector<double> snr(n);
    std::vector<std::uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
        rates[i] = static_cast<std::int32_t>(
            rng.nextBelow(phy::kNumRates));
        // In-range, off both table edges, and the zero-SINR
        // sentinel itself.
        snr[i] = (i % 13 == 0)
                     ? kZeroSinrDb
                     : -20.0 + rng.nextDouble() * 60.0;
        keys[i] = rng.next();
    }
    for (std::uint64_t slot :
         {std::uint64_t(0), std::uint64_t(421)}) {
        std::vector<std::uint8_t> ok(n, 9);
        std::vector<double> pber(n, -1.0);
        AnalyticLink::drawBatch(flat.view(), rates, snr, keys, slot,
                                ok, pber);
        for (size_t i = 0; i < n; ++i) {
            AnalyticLink link(t.get(), keys[i]);
            const LinkFrameResult fr = link.drawAt(
                static_cast<phy::RateIndex>(rates[i]), slot,
                snr[i]);
            ASSERT_EQ(fr.ok, ok[i] != 0)
                << "entry " << i << " slot " << slot;
            ASSERT_EQ(fr.pber, pber[i])
                << "entry " << i << " slot " << slot;
            ASSERT_FALSE(fr.fullPhy);
        }
    }
}

/**
 * A zero-signal user (sig = 0, so SINR collapses to the shared
 * kZeroSinrDb sentinel rather than -inf) must see identical frame
 * statistics through the scalar drawAt() path and the batched
 * drawBatch() path -- the guarantee that lets the SoA engine feed
 * the sentinel through the kernels unchanged.
 */
TEST(LinkFidelity, ZeroSignalUserIdenticalInScalarAndBatchedPaths)
{
    std::shared_ptr<const softphy::CalibrationTable> t =
        sharedTable();
    const softphy::FlatCalibration flat = t->flatten();
    const std::uint64_t key = 0x5EED;
    AnalyticLink link(t.get(), key);

    const std::int32_t rate = 2;
    std::uint64_t sent = 0, ok_scalar = 0, ok_batch = 0;
    for (std::uint64_t slot = 0; slot < 200; ++slot) {
        const LinkFrameResult fr = link.drawAt(
            static_cast<phy::RateIndex>(rate), slot, kZeroSinrDb);
        std::uint8_t ok = 9;
        double pber = -1.0;
        AnalyticLink::drawBatch(
            flat.view(), std::span(&rate, 1),
            std::span<const double>(&kZeroSinrDb, 1),
            std::span(&key, 1), slot, std::span(&ok, 1),
            std::span(&pber, 1));
        ASSERT_EQ(fr.ok, ok != 0) << "slot " << slot;
        ASSERT_EQ(fr.pber, pber) << "slot " << slot;
        ++sent;
        ok_scalar += fr.ok ? 1 : 0;
        ok_batch += ok ? 1 : 0;
    }
    EXPECT_EQ(ok_scalar, ok_batch);
    // At the sentinel the table's lowest bin governs: deep in the
    // noise, virtually nothing survives.
    EXPECT_LT(static_cast<double>(ok_scalar),
              0.5 * static_cast<double>(sent));
}

// ------------------------------------- table vs fresh ground truth

TEST(CalibrationTable, MatchesIndependentFullPhyMeasurements)
{
    std::shared_ptr<const softphy::CalibrationTable> table =
        sharedTable();
    const softphy::CalibrationTable::BuildSpec build =
        testBuildSpec();

    // Re-measure a selection of (rate, SNR) cells in each rate's
    // waterfall region with *independent* seeds and frame counts;
    // the table (interpolated at the same SNR) must agree within
    // binomial sampling tolerance.
    struct Probe {
        phy::RateIndex rate;
        double snrDb;
    };
    const Probe probes[] = {
        {0, -1.0}, {2, 2.0}, {4, 7.0}, {6, 15.0},
    };
    const std::uint64_t packets = 96;
    for (const Probe &probe : probes) {
        ScenarioSpec scen;
        scen.rate = probe.rate;
        scen.rx = build.rx;
        scen.channel = build.channel;
        scen.channelCfg.set("snr_db",
                            strprintf("%.17g", probe.snrDb));
        scen.channelCfg.set("seed", "987654321");
        scen.payloadBits = build.payloadBits;
        scen.payloadSeed = 0xFACADE;

        // Two sweep workers share this accumulator, and the
        // sweepFrames contract allows only worker-indexed state in
        // the callback -- an atomic keeps the count exact (the CI
        // TSan leg caught the original plain uint64_t here).
        std::atomic<std::uint64_t> bad{0};
        sweepFrames(scen, packets, 2,
                    [&](int, const FrameResult &res, std::uint64_t) {
                        if (!res.ok)
                            bad.fetch_add(1, std::memory_order_relaxed);
                    });
        const double measured = static_cast<double>(bad.load()) /
                                static_cast<double>(packets);
        const double predicted = table->per(probe.rate, probe.snrDb);
        // ~4 sigma of the two binomial estimates plus interpolation
        // slack across the 2 dB bins.
        const double sigma = std::sqrt(
            measured * (1.0 - measured) / packets +
            predicted * (1.0 - predicted) /
                static_cast<double>(build.packetsPerCell));
        EXPECT_NEAR(predicted, measured, 4.0 * sigma + 0.12)
            << "rate " << probe.rate << " @ " << probe.snrDb
            << " dB";
    }
}

// ------------------------------- analytic vs full, system level

namespace {

void
expectAnalyticTracksFull(const char *preset)
{
    const std::uint64_t slots = 300;
    NetworkSpec spec = fidelityCell(preset, 12);

    NetworkResult full = NetworkSim(spec).run(slots, 2);

    NetworkSpec ana = spec;
    ana.fidelity.mode = FidelityMode::Analytic;
    NetworkResult fast = NetworkSim(ana, sharedTable()).run(slots, 2);

    ASSERT_EQ(full.users.size(), fast.users.size());
    for (size_t u = 0; u < full.users.size(); ++u) {
        const double per_full =
            1.0 - full.users[u].frameSuccessRate();
        const double per_fast =
            1.0 - fast.users[u].frameSuccessRate();
        // Binomial noise at 300 slots is ~0.03 per estimate; allow
        // ~4 sigma plus calibration bias headroom.
        EXPECT_NEAR(per_fast, per_full, 0.12)
            << preset << " user " << u;
        EXPECT_EQ(fast.users[u].analyticFrames,
                  fast.users[u].framesSent)
            << "analytic mode must never touch the full PHY";
    }
    const double agg_full = 1.0 - full.aggregate.frameSuccessRate();
    const double agg_fast = 1.0 - fast.aggregate.frameSuccessRate();
    EXPECT_NEAR(agg_fast, agg_full, 0.03) << preset;

    const double gp_full = full.aggregateGoodputMbps();
    const double gp_fast = fast.aggregateGoodputMbps();
    ASSERT_GT(gp_full, 0.0);
    EXPECT_NEAR(gp_fast / gp_full, 1.0, 0.10) << preset;
}

} // namespace

TEST(LinkFidelity, AnalyticTracksFullPerOnCell16)
{
    expectAnalyticTracksFull("cell-16");
}

TEST(LinkFidelity, AnalyticTracksFullPerOnCellMobile)
{
    expectAnalyticTracksFull("cell-mobile");
}

// --------------------------------------- auto mode + determinism

namespace {

void
expectSameUser(const UserStats &a, const UserStats &b, int user)
{
    EXPECT_EQ(a.framesSent, b.framesSent) << "user " << user;
    EXPECT_EQ(a.framesOk, b.framesOk) << "user " << user;
    EXPECT_EQ(a.fullPhyFrames, b.fullPhyFrames) << "user " << user;
    EXPECT_EQ(a.analyticFrames, b.analyticFrames) << "user " << user;
    EXPECT_EQ(a.delivered, b.delivered) << "user " << user;
    EXPECT_EQ(a.dropped, b.dropped) << "user " << user;
    EXPECT_EQ(a.goodputBits, b.goodputBits) << "user " << user;
    EXPECT_EQ(a.retransmissions, b.retransmissions)
        << "user " << user;
    EXPECT_EQ(a.latencySlots.mean(), b.latencySlots.mean())
        << "user " << user;
    EXPECT_EQ(a.latencySlots.variance(), b.latencySlots.variance())
        << "user " << user;
    for (int bin = 0; bin < a.rateHist.numBins(); ++bin)
        EXPECT_EQ(a.rateHist.count(bin), b.rateHist.count(bin))
            << "user " << user << " rate bin " << bin;
}

} // namespace

TEST(LinkFidelity, AutoModeBitIdenticalAt1_2_8Threads)
{
    const std::uint64_t slots = 48;
    NetworkSpec spec = fidelityCell("cell-16", 8);
    // Re-enable adaptation: the mixed feedback stream (full pber on
    // refresh slots, calibrated pber in between) must itself be
    // deterministic.
    spec.pberLo = 1e-6;
    spec.pberHi = 1e-4;
    spec.fidelity.mode = FidelityMode::Auto;
    spec.fidelity.warmupSlots = 8;
    spec.fidelity.refreshPeriod = 16;
    spec.fidelity.refreshSlots = 2;

    NetworkSim sim(spec, sharedTable());
    NetworkResult t1 = sim.run(slots, 1);
    NetworkResult t2 = sim.run(slots, 2);
    NetworkResult t8 = sim.run(slots, 8);
    for (size_t u = 0; u < t1.users.size(); ++u) {
        expectSameUser(t1.users[u], t2.users[u],
                       static_cast<int>(u));
        expectSameUser(t1.users[u], t8.users[u],
                       static_cast<int>(u));
    }
    expectSameUser(t1.aggregate, t2.aggregate, -1);
    expectSameUser(t1.aggregate, t8.aggregate, -1);

    // The schedule bookkeeping: full-buffer users transmit every
    // slot, so the full-PHY share is exactly the policy's count --
    // 8 warm-up + ceil(40 / 16) refresh windows x 2 slots.
    for (const UserStats &u : t1.users) {
        EXPECT_EQ(u.framesSent, slots);
        EXPECT_EQ(u.fullPhyFrames, 8u + 3u * 2u);
        EXPECT_EQ(u.analyticFrames, u.framesSent - u.fullPhyFrames);
    }
}

TEST(LinkFidelity, AnalyticModeBitIdenticalAt1_2_8Threads)
{
    const std::uint64_t slots = 64;
    NetworkSpec spec = fidelityCell("cell-16", 8);
    spec.pberLo = 1e-6;
    spec.pberHi = 1e-4;
    spec.fidelity.mode = FidelityMode::Analytic;

    NetworkSim sim(spec, sharedTable());
    NetworkResult t1 = sim.run(slots, 1);
    NetworkResult t2 = sim.run(slots, 2);
    NetworkResult t8 = sim.run(slots, 8);
    for (size_t u = 0; u < t1.users.size(); ++u) {
        expectSameUser(t1.users[u], t2.users[u],
                       static_cast<int>(u));
        expectSameUser(t1.users[u], t8.users[u],
                       static_cast<int>(u));
    }
}

TEST(LinkFidelity, FullModeUnchangedByTheFidelityMachinery)
{
    // A full-fidelity run must not depend on whether a calibration
    // table happens to be attached: same seeds, same physics.
    const std::uint64_t slots = 32;
    NetworkSpec spec = fidelityCell("cell-16", 4);
    NetworkResult bare = NetworkSim(spec).run(slots, 2);
    NetworkResult with_table =
        NetworkSim(spec, sharedTable()).run(slots, 2);
    for (size_t u = 0; u < bare.users.size(); ++u) {
        expectSameUser(bare.users[u], with_table.users[u],
                       static_cast<int>(u));
        EXPECT_EQ(bare.users[u].fullPhyFrames,
                  bare.users[u].framesSent);
        EXPECT_EQ(bare.users[u].analyticFrames, 0u);
    }
}
