/**
 * @file
 * Property-based sweeps across the library: invariants that must
 * hold for randomized inputs over wide parameter grids -- roundtrip
 * identities, monotonicities, determinism, and arithmetic safety.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "channel/interference.hh"
#include "common/fixed_point.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "phy/fft.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"
#include "sim/sweep.hh"

using namespace wilis;

// ---------------------------------------------------------------
// Fixed point.

TEST(FixedPointProps, QuantizeIsMonotoneAndBounded)
{
    for (int width : {3, 4, 6, 8, 12}) {
        std::int32_t prev = INT32_MIN;
        for (double x = -5.0; x <= 5.0; x += 0.01) {
            std::int32_t q = quantize(x, width, 2.0);
            EXPECT_GE(q, -(1 << (width - 1)));
            EXPECT_LE(q, (1 << (width - 1)) - 1);
            EXPECT_GE(q, prev) << "width " << width << " x " << x;
            prev = q;
        }
    }
}

TEST(FixedPointProps, DequantizeInvertsWithinOneLsb)
{
    const int width = 8;
    const double fs = 2.0;
    const double lsb = fs / ((1 << (width - 1)) - 1);
    SplitMix64 rng(5);
    for (int i = 0; i < 1000; ++i) {
        double x = (rng.nextDouble() - 0.5) * 2.0 * fs * 0.95;
        double back = dequantize(quantize(x, width, fs), width, fs);
        EXPECT_NEAR(back, x, lsb);
    }
}

TEST(FixedPointProps, SatIntSaturatesNotWraps)
{
    SatInt a(6, 30);
    SatInt b(6, 30);
    EXPECT_EQ((a + b).get(), 31);  // 60 saturates to max
    SatInt c(6, -30);
    EXPECT_EQ((c - b).get(), -32); // -60 saturates to min
    EXPECT_EQ((a - b).get(), 0);
}

// ---------------------------------------------------------------
// RNG.

TEST(RandomProps, CounterRngIsPureFunction)
{
    CounterRng a(42);
    CounterRng b(42);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(a.at(i * 7919), b.at(i * 7919));
    // Order independence.
    EXPECT_EQ(a.at(5), b.at(5));
    EXPECT_EQ(a.at(3), b.at(3));
}

TEST(RandomProps, ForkedStreamsDiffer)
{
    CounterRng root(42);
    CounterRng s1 = root.fork(1);
    CounterRng s2 = root.fork(2);
    int same = 0;
    for (std::uint64_t i = 0; i < 64; ++i)
        same += s1.at(i) == s2.at(i);
    EXPECT_EQ(same, 0);
}

TEST(RandomProps, GaussianMomentsAreStandardNormal)
{
    GaussianSource g(12345);
    RunningStats st;
    double kurt_acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = g.next();
        st.add(x);
        kurt_acc += x * x * x * x;
    }
    EXPECT_NEAR(st.mean(), 0.0, 0.01);
    EXPECT_NEAR(st.variance(), 1.0, 0.02);
    EXPECT_NEAR(kurt_acc / n, 3.0, 0.1); // normal kurtosis
}

TEST(RandomProps, UniformBitsAreBalanced)
{
    SplitMix64 rng(9);
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += rng.nextBit();
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

// ---------------------------------------------------------------
// Stats.

TEST(StatsProps, MergeEqualsSequential)
{
    SplitMix64 rng(3);
    RunningStats whole;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 10000; ++i) {
        double x = rng.nextDouble() * 10.0 - 3.0;
        whole.add(x);
        (i % 3 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(StatsProps, MergeWithEmptyIsIdentity)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_NEAR(a.mean(), 1.5, 1e-12);

    RunningStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_NEAR(c.mean(), 1.5, 1e-12);
}

// ---------------------------------------------------------------
// End-to-end roundtrip sweeps.

class RoundTripAllRates : public ::testing::TestWithParam<int>
{};

INSTANTIATE_TEST_SUITE_P(Rates, RoundTripAllRates,
                         ::testing::Range(0, phy::kNumRates));

TEST_P(RoundTripAllRates, RandomSizesNoiseless)
{
    int rate = GetParam();
    phy::OfdmTransmitter tx(rate);
    phy::OfdmReceiver rx(rate);
    SplitMix64 rng(static_cast<std::uint64_t>(rate) + 1000);
    for (int trial = 0; trial < 8; ++trial) {
        size_t bits = 1 + rng.nextBelow(3000);
        BitVec payload(bits);
        for (auto &b : payload)
            b = rng.nextBit();
        SampleVec s = tx.modulate(payload);
        phy::RxResult res = rx.demodulate(s, bits);
        ASSERT_EQ(res.bitErrors(payload), 0u)
            << "rate " << rate << " size " << bits;
    }
}

TEST_P(RoundTripAllRates, TxEnergyIsNormalized)
{
    // Average time-domain sample energy must be ~(52/64) regardless
    // of modulation (unit-energy constellations, unitary IFFT).
    int rate = GetParam();
    phy::OfdmTransmitter tx(rate);
    SplitMix64 rng(static_cast<std::uint64_t>(rate) + 7);
    BitVec payload(2000);
    for (auto &b : payload)
        b = rng.nextBit();
    SampleVec s = tx.modulate(payload);
    double e = 0.0;
    for (const auto &v : s)
        e += std::norm(v);
    double per_sample = e / static_cast<double>(s.size());
    // CP repeats symbol tails, so expectation stays (52/64).
    EXPECT_NEAR(per_sample, 52.0 / 64.0, 0.08)
        << phy::rateTable(rate).name();
}

class BerMonotoneInSnr : public ::testing::TestWithParam<const char *>
{};

INSTANTIATE_TEST_SUITE_P(Decoders, BerMonotoneInSnr,
                         ::testing::Values("viterbi", "sova", "bcjr"));

TEST_P(BerMonotoneInSnr, WaterfallDecreases)
{
    // BER must be (weakly) decreasing in SNR across the waterfall.
    double prev = 1.0;
    for (double snr : {0.0, 2.0, 4.0, 6.0}) {
        sim::TestbenchConfig cfg;
        cfg.rate = 2;
        cfg.rx.decoder = GetParam();
        cfg.channelCfg = li::Config::fromString(
            "snr_db=" + std::to_string(snr) + ",seed=31");
        ErrorStats s = sim::measureBer(
            sim::ScenarioSpec::fromTestbench(cfg, 1000), 25, 2);
        EXPECT_LE(s.ber(), prev * 1.05 + 1e-6)
            << GetParam() << " at " << snr << " dB";
        prev = s.ber();
    }
    EXPECT_LT(prev, 1e-3); // and the waterfall actually fell
}

// ---------------------------------------------------------------
// Interference channel.

TEST(Interference, ToneConcentratesOnOneSubcarrier)
{
    li::Config cfg = li::Config::fromString(
        "snr_db=100,sir_db=0,interferer_bin=10,seed=2");
    channel::InterferenceChannel ch(cfg);
    // Push a silent symbol through and look at the FFT.
    SampleVec s(80, Sample(0, 0));
    ch.apply(s, 0);
    SampleVec body(s.begin() + 16, s.end());
    phy::Fft fft(64);
    fft.forward(body);
    double on_bin = std::norm(body[10]);
    double elsewhere = 0.0;
    for (int k = 0; k < 64; ++k) {
        if (k != 10)
            elsewhere = std::max(elsewhere, std::norm(body[k]));
    }
    EXPECT_GT(on_bin, 100.0 * elsewhere);
}

TEST(Interference, StrongerInterferenceRaisesBer)
{
    // Near the waterfall edge a strong tone measurably hurts; the
    // coding + interleaving absorb a weak one.
    auto ber_at = [](double sir) {
        sim::TestbenchConfig cfg;
        cfg.rate = 2;
        cfg.rx.decoder = "bcjr";
        cfg.channel = "interference";
        cfg.channelCfg = li::Config::fromString(
            "snr_db=4,sir_db=" + std::to_string(sir) +
            ",interferer_bin=10,seed=3");
        return sim::measureBer(
                   sim::ScenarioSpec::fromTestbench(cfg, 1000), 30,
                   2)
            .ber();
    };
    double weak = ber_at(25.0);
    double strong = ber_at(-6.0);
    EXPECT_GT(strong, 2.0 * weak + 1e-6);
    EXPECT_GT(strong, 1e-4);
}

TEST(Interference, BatchAndStreamingAgree)
{
    li::Config cfg = li::Config::fromString(
        "snr_db=10,sir_db=5,interferer_bin=-13,seed=4");
    channel::InterferenceChannel batch(cfg);
    channel::InterferenceChannel stream(cfg);
    SampleVec s(320, Sample(0.5, -0.25));
    SampleVec expect = s;
    batch.apply(expect, 6);
    for (size_t i = 0; i < s.size(); ++i) {
        Sample got = stream.impairSample(s[i], 6, i);
        ASSERT_LT(std::abs(got - expect[i]), 1e-12) << i;
    }
}

TEST(Interference, RegistryCreates)
{
    auto ch = channel::makeChannel(
        "interference", li::Config::fromString("snr_db=10,seed=1"));
    EXPECT_EQ(ch->name(), "interference");
}
