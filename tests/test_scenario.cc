/**
 * @file
 * Tests for the unified ScenarioSpec: config round-trips, the preset
 * registry, fluent grid helpers, and equivalence between a spec-built
 * testbench and the legacy TestbenchConfig path.
 */

#include <gtest/gtest.h>

#include "sim/scenario.hh"
#include "sim/sweep.hh"
#include "sim/testbench.hh"

using namespace wilis;
using namespace wilis::sim;

TEST(ScenarioSpec, ConfigRoundTrips)
{
    ScenarioSpec s;
    s.name = "roundtrip";
    s.rate = 6;
    s.channel = "rayleigh";
    s.channelCfg =
        li::Config::fromString("snr_db=9.5,doppler_hz=35,seed=42");
    s.payloadBits = 1234;
    s.payloadSeed = 777;
    s.rx.decoder = "sova";
    s.rx.decoderCfg = li::Config::fromString("traceback_l=48");
    s.rx.demapper.softWidth = 5;
    s.rx.applyCsiWeight = true;
    s.clocks.basebandMhz = 40.0;

    ScenarioSpec back = ScenarioSpec::fromConfig(s.toConfig());
    EXPECT_EQ(back.name, "roundtrip");
    EXPECT_EQ(back.rate, 6);
    EXPECT_EQ(back.channel, "rayleigh");
    EXPECT_DOUBLE_EQ(back.snrDb(), 9.5);
    EXPECT_DOUBLE_EQ(back.channelCfg.getDouble("doppler_hz", 0), 35.0);
    EXPECT_EQ(back.channelCfg.getInt("seed", 0), 42);
    EXPECT_EQ(back.payloadBits, 1234u);
    EXPECT_EQ(back.payloadSeed, 777u);
    EXPECT_EQ(back.rx.decoder, "sova");
    EXPECT_EQ(back.rx.decoderCfg.getInt("traceback_l", 0), 48);
    EXPECT_EQ(back.rx.demapper.softWidth, 5);
    EXPECT_TRUE(back.rx.applyCsiWeight);
    EXPECT_DOUBLE_EQ(back.clocks.basebandMhz, 40.0);
}

TEST(ScenarioSpec, FullRangeSeedsSurviveRoundTrip)
{
    // Grid cells assign uniform 64-bit seeds; serialization must not
    // truncate them through a signed-long parse.
    ScenarioSpec s;
    s.payloadSeed = 0xFEDCBA9876543210ull;
    ScenarioSpec back = ScenarioSpec::fromConfig(s.toConfig());
    EXPECT_EQ(back.payloadSeed, 0xFEDCBA9876543210ull);
}

TEST(ScenarioSpec, FromConfigString)
{
    ScenarioSpec s = ScenarioSpec::fromConfig(li::Config::fromString(
        "rate=3,channel=multipath,snr_db=14,decoder=viterbi,"
        "payload_bits=512,channel.num_taps=6"));
    EXPECT_EQ(s.rate, 3);
    EXPECT_EQ(s.channel, "multipath");
    EXPECT_DOUBLE_EQ(s.snrDb(), 14.0);
    EXPECT_EQ(s.rx.decoder, "viterbi");
    EXPECT_EQ(s.payloadBits, 512u);
    EXPECT_EQ(s.channelCfg.getInt("num_taps", 0), 6);
}

TEST(ScenarioSpec, FluentHelpersDoNotMutateOriginal)
{
    ScenarioSpec base;
    ScenarioSpec derived = base.withRate(7)
                               .withChannel("rayleigh")
                               .withSnrDb(3.0)
                               .withPayloadBits(64);
    EXPECT_EQ(base.rate, 4);
    EXPECT_EQ(base.channel, "awgn");
    EXPECT_EQ(derived.rate, 7);
    EXPECT_EQ(derived.channel, "rayleigh");
    EXPECT_DOUBLE_EQ(derived.snrDb(), 3.0);
    EXPECT_EQ(derived.payloadBits, 64u);
}

TEST(ScenarioSpec, LabelNamesEveryAxis)
{
    ScenarioSpec s = ScenarioSpec().withRate(1).withSnrDb(7.5);
    s.payloadBits = 333;
    std::string label = s.label();
    EXPECT_NE(label.find("r1"), std::string::npos);
    EXPECT_NE(label.find("awgn"), std::string::npos);
    EXPECT_NE(label.find("7.5"), std::string::npos);
    EXPECT_NE(label.find("333"), std::string::npos);
}

TEST(ScenarioPresets, BuiltinsExist)
{
    for (const char *name :
         {"awgn-mid", "awgn-clean", "rayleigh-fading",
          "multipath-selective", "interference-tone"}) {
        EXPECT_TRUE(hasScenarioPreset(name)) << name;
        ScenarioSpec s = scenarioPreset(name);
        EXPECT_EQ(s.name, name);
    }
    EXPECT_FALSE(hasScenarioPreset("no-such-preset"));
    EXPECT_GE(scenarioPresetNames().size(), 5u);
}

TEST(ScenarioPresets, PresetsRunEndToEnd)
{
    // Every built-in preset must instantiate a working transceiver.
    for (const std::string &name : scenarioPresetNames()) {
        ScenarioSpec s = scenarioPreset(name);
        s.payloadBits = 200;
        Testbench tb(s);
        sim::FrameResult res = tb.runFrame(s.payloadBits, 0);
        EXPECT_EQ(res.txPayload.size(), 200u) << name;
        EXPECT_EQ(res.rx.payload.size(), 200u) << name;
    }
}

TEST(ScenarioSpec, SpecAndLegacyConfigBuildIdenticalTestbenches)
{
    ScenarioSpec spec = scenarioPreset("rayleigh-fading");
    spec.rate = 2;
    spec.payloadBits = 600;

    Testbench from_spec(spec);
    Testbench from_cfg(spec.testbench());

    for (std::uint64_t p = 0; p < 4; ++p) {
        PacketResult a = from_spec.runPacket(600, p);
        PacketResult b = from_cfg.runPacket(600, p);
        EXPECT_EQ(a.txPayload, b.txPayload);
        EXPECT_EQ(a.rx.payload, b.rx.payload);
        EXPECT_EQ(a.bitErrors, b.bitErrors);
    }
}

TEST(ScenarioSpec, MeasureBerMatchesLegacyOverload)
{
    ScenarioSpec spec;
    spec.rate = 4;
    spec.channelCfg = li::Config::fromString("snr_db=6,seed=2");
    spec.payloadBits = 500;

    ErrorStats via_spec = measureBer(spec, 20, 2);
    ErrorStats via_cfg = measureBer(spec.testbench(), 500, 20, 2);
    EXPECT_EQ(via_spec.bits, via_cfg.bits);
    EXPECT_EQ(via_spec.errors, via_cfg.errors);
}
