/**
 * @file
 * Tests for the unified ScenarioSpec: config round-trips, the preset
 * registry, fluent grid helpers, and equivalence between a spec-built
 * testbench and the legacy TestbenchConfig path.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>

#include "sim/scenario.hh"
#include "sim/sweep.hh"
#include "sim/testbench.hh"

using namespace wilis;
using namespace wilis::sim;

TEST(ScenarioSpec, ConfigRoundTrips)
{
    ScenarioSpec s;
    s.name = "roundtrip";
    s.rate = 6;
    s.channel = "rayleigh";
    s.channelCfg =
        li::Config::fromString("snr_db=9.5,doppler_hz=35,seed=42");
    s.payloadBits = 1234;
    s.payloadSeed = 777;
    s.rx.decoder = "sova";
    s.rx.decoderCfg = li::Config::fromString("traceback_l=48");
    s.rx.demapper.softWidth = 5;
    s.rx.applyCsiWeight = true;
    s.clocks.basebandMhz = 40.0;

    ScenarioSpec back = ScenarioSpec::fromConfig(s.toConfig());
    EXPECT_EQ(back.name, "roundtrip");
    EXPECT_EQ(back.rate, 6);
    EXPECT_EQ(back.channel, "rayleigh");
    EXPECT_DOUBLE_EQ(back.snrDb(), 9.5);
    EXPECT_DOUBLE_EQ(back.channelCfg.getDouble("doppler_hz", 0), 35.0);
    EXPECT_EQ(back.channelCfg.getInt("seed", 0), 42);
    EXPECT_EQ(back.payloadBits, 1234u);
    EXPECT_EQ(back.payloadSeed, 777u);
    EXPECT_EQ(back.rx.decoder, "sova");
    EXPECT_EQ(back.rx.decoderCfg.getInt("traceback_l", 0), 48);
    EXPECT_EQ(back.rx.demapper.softWidth, 5);
    EXPECT_TRUE(back.rx.applyCsiWeight);
    EXPECT_DOUBLE_EQ(back.clocks.basebandMhz, 40.0);
}

TEST(ScenarioSpec, FullRangeSeedsSurviveRoundTrip)
{
    // Grid cells assign uniform 64-bit seeds; serialization must not
    // truncate them through a signed-long parse.
    ScenarioSpec s;
    s.payloadSeed = 0xFEDCBA9876543210ull;
    ScenarioSpec back = ScenarioSpec::fromConfig(s.toConfig());
    EXPECT_EQ(back.payloadSeed, 0xFEDCBA9876543210ull);
}

TEST(ScenarioSpec, FromConfigString)
{
    ScenarioSpec s = ScenarioSpec::fromConfig(li::Config::fromString(
        "rate=3,channel=multipath,snr_db=14,decoder=viterbi,"
        "payload_bits=512,channel.num_taps=6"));
    EXPECT_EQ(s.rate, 3);
    EXPECT_EQ(s.channel, "multipath");
    EXPECT_DOUBLE_EQ(s.snrDb(), 14.0);
    EXPECT_EQ(s.rx.decoder, "viterbi");
    EXPECT_EQ(s.payloadBits, 512u);
    EXPECT_EQ(s.channelCfg.getInt("num_taps", 0), 6);
}

TEST(ScenarioSpec, RejectsUnknownKeysWithAPinnedError)
{
    // A misspelled key used to be silently accepted, leaving the
    // default in place and the experiment quietly wrong; it is now
    // fatal with the offending key named.
    EXPECT_DEATH(ScenarioSpec::fromConfig(li::Config::fromString(
                     "rate=3,payload_bit=512")),
                 "unknown ScenarioSpec key 'payload_bit'");
    EXPECT_DEATH(ScenarioSpec::fromConfig(
                     li::Config::fromString("snr=10")),
                 "unknown ScenarioSpec key 'snr'");
    // Prefixed pass-throughs stay open: their sub-config owns them.
    ScenarioSpec s = ScenarioSpec::fromConfig(li::Config::fromString(
        "channel.custom_knob=1,decoder.window=9"));
    EXPECT_EQ(s.channelCfg.getInt("custom_knob", 0), 1);
    // A bare prefix is not a key.
    EXPECT_DEATH(ScenarioSpec::fromConfig(
                     li::Config::fromString("channel.=1")),
                 "unknown ScenarioSpec key 'channel.'");
}

TEST(ScenarioSpec, RejectsMalformedValues)
{
    EXPECT_DEATH(ScenarioSpec::fromConfig(
                     li::Config::fromString("rate=fast")),
                 "");
    EXPECT_DEATH(ScenarioSpec::fromConfig(
                     li::Config::fromString("rate=9")),
                 "rate index 9 out of range");
}

TEST(NetworkSpecStrict, RejectsUnknownKeysWithAPinnedError)
{
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "users=8,user=9")),
                 "unknown NetworkSpec key 'user'");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=3x3,schedular=round_robin")),
                 "unknown NetworkSpec key 'schedular'");
    // The link.* pass-through still reaches the link template --
    // and the template rejects ITS unknown keys too.
    NetworkSpec ok = NetworkSpec::fromConfig(
        li::Config::fromString("link.soft_width=5"));
    EXPECT_EQ(ok.link.rx.demapper.softWidth, 5);
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "link.soft_widht=5")),
                 "unknown ScenarioSpec key 'soft_widht'");
}

TEST(NetworkSpecStrict, RejectsSingleCellKeysInMulticellConfigs)
{
    // arrival/arrival_prob/snr_spread_db/snr_db only drive the
    // single-cell engine; pairing them with a grid would silently
    // change nothing.
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=3x3,arrival=bernoulli")),
                 "single-cell key 'arrival' has no effect in "
                 "multi-cell mode");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=2x2,snr_db=18")),
                 "single-cell key 'snr_db' has no effect");
    // ...and symmetrically: multi-cell-only keys without a grid
    // would silently run the single-cell engine minus its traffic
    // model.
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "users=16,traffic=poisson,traffic_load=0.2")),
                 "multi-cell key 'traffic' has no effect without a "
                 "cell grid");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "scheduler=proportional_fair")),
                 "multi-cell key 'scheduler' has no effect");
    // Each engine's spec round-trips with exactly its own key set.
    NetworkSpec grid;
    grid.topology.rows = 2;
    grid.topology.cols = 2;
    const li::Config cfg = grid.toConfig();
    EXPECT_FALSE(cfg.has("arrival"));
    EXPECT_FALSE(cfg.has("snr_spread_db"));
    NetworkSpec back = NetworkSpec::fromConfig(cfg);
    EXPECT_TRUE(back.multicell());
    NetworkSpec single;
    const li::Config scfg = single.toConfig();
    EXPECT_FALSE(scfg.has("cells"));
    EXPECT_FALSE(scfg.has("traffic"));
    EXPECT_FALSE(NetworkSpec::fromConfig(scfg).multicell());
}

TEST(NetworkSpecStrict, RejectsMalformedValues)
{
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("cells=9")),
                 "malformed cells '9'");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("cells=3x")),
                 "malformed cells '3x'");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("traffic=bursty")),
                 "unknown traffic model 'bursty'");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("scheduler=fifo")),
                 "unknown scheduler 'fifo'");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("arrival=sometimes")),
                 "unknown arrival model 'sometimes'");
    // The upper-stack keys are validated the same way: an unknown
    // value dies naming the valid set.
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("cells=3x3,qdisc=weird")),
                 "unknown queue discipline 'weird' "
                 "\\(fifo\\|priority\\|drop_head\\)");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=3x3,contention=csma")),
                 "unknown contention mode 'csma' \\(none\\|fixed\\)");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=3x3,control_rate=-0.5")),
                 "control_rate must be >= 0");
}

TEST(NetworkSpecStrict, UpperStackKeysAreMulticellOnly)
{
    // qdisc/control_rate/contention configure the multi-cell
    // traffic queues and scheduler; without a grid they would
    // silently do nothing.
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("qdisc=priority")),
                 "multi-cell key 'qdisc' has no effect without a "
                 "cell grid");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("control_rate=0.1")),
                 "multi-cell key 'control_rate' has no effect");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("contention=fixed")),
                 "multi-cell key 'contention' has no effect");
    // trace is a common key: both engines record it.
    EXPECT_TRUE(NetworkSpec::fromConfig(
                    li::Config::fromString("trace=true"))
                    .trace);
    NetworkSpec grid = NetworkSpec::fromConfig(li::Config::fromString(
        "cells=2x2,qdisc=drop_head,control_rate=0.25,"
        "contention=fixed,trace=true"));
    EXPECT_EQ(grid.traffic.qdisc, mac::QdiscKind::DropHead);
    EXPECT_DOUBLE_EQ(grid.traffic.controlRate, 0.25);
    EXPECT_EQ(grid.scheduler.contention, mac::ContentionMode::Fixed);
    EXPECT_TRUE(grid.trace);
    // ...and the new keys round-trip like everything else.
    NetworkSpec back = NetworkSpec::fromConfig(grid.toConfig());
    EXPECT_EQ(back.traffic.qdisc, mac::QdiscKind::DropHead);
    EXPECT_DOUBLE_EQ(back.traffic.controlRate, 0.25);
    EXPECT_EQ(back.scheduler.contention, mac::ContentionMode::Fixed);
    EXPECT_TRUE(back.trace);
}

TEST(NetworkSpecStrict, MobilityKeysRoundTripAndValidate)
{
    NetworkSpec grid = NetworkSpec::fromConfig(li::Config::fromString(
        "cells=2x2,mobility=waypoint,speed_mps=25,"
        "handover_hyst_db=4.5,handover_ttt_slots=96,"
        "churn_rate=0.001"));
    EXPECT_EQ(grid.mobility.model, MobilityModel::Waypoint);
    EXPECT_DOUBLE_EQ(grid.mobility.speedMps, 25.0);
    EXPECT_DOUBLE_EQ(grid.mobility.handoverHystDb, 4.5);
    EXPECT_EQ(grid.mobility.handoverTttSlots, 96u);
    EXPECT_DOUBLE_EQ(grid.mobility.churnRate, 0.001);
    NetworkSpec back = NetworkSpec::fromConfig(grid.toConfig());
    EXPECT_EQ(back.mobility.model, MobilityModel::Waypoint);
    EXPECT_DOUBLE_EQ(back.mobility.speedMps, 25.0);
    EXPECT_DOUBLE_EQ(back.mobility.handoverHystDb, 4.5);
    EXPECT_EQ(back.mobility.handoverTttSlots, 96u);
    EXPECT_DOUBLE_EQ(back.mobility.churnRate, 0.001);
    // The static default round-trips as "none" and keeps the
    // mobility layer disabled.
    EXPECT_FALSE(back.mobility.enabled() &&
                 back.mobility.model == MobilityModel::None);
    EXPECT_EQ(NetworkSpec::fromConfig(
                  li::Config::fromString("cells=2x2"))
                  .mobility.model,
              MobilityModel::None);

    // Mobility only drives the multi-cell engine.
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("mobility=waypoint")),
                 "multi-cell key 'mobility' has no effect without "
                 "a cell grid");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("churn_rate=0.01")),
                 "multi-cell key 'churn_rate' has no effect");
    EXPECT_DEATH(NetworkSpec::fromConfig(
                     li::Config::fromString("speed_mps=10")),
                 "multi-cell key 'speed_mps' has no effect");
    // Malformed values die naming the constraint.
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=2x2,mobility=teleport")),
                 "unknown mobility model 'teleport' "
                 "\\(none\\|line\\|orbit\\|waypoint\\)");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=2x2,churn_rate=1.5")),
                 "churn_rate must be in \\[0,1\\)");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=2x2,speed_mps=0")),
                 "speed_mps must be > 0");
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=2x2,handover_hyst_db=-1")),
                 "handover_hyst_db must be >= 0");
    // Misspellings stay fatal like every other key.
    EXPECT_DEATH(NetworkSpec::fromConfig(li::Config::fromString(
                     "cells=2x2,mobillity=line")),
                 "unknown NetworkSpec key 'mobillity'");
}

TEST(ScenarioDocs, ScenariosDocCoversExactlyTheAcceptedKeys)
{
    // docs/SCENARIOS.md documents every accepted config key in
    // "## ... keys" tables whose first column is the backticked key
    // name; this walk keeps the reference and the parser in
    // lockstep -- adding a key to one without the other fails here.
    std::ifstream in(std::string(WILIS_SOURCE_DIR) +
                     "/docs/SCENARIOS.md");
    ASSERT_TRUE(in.good()) << "docs/SCENARIOS.md missing";
    std::set<std::string> documented;
    bool in_key_section = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("## ", 0) == 0)
            in_key_section =
                line.find("keys") != std::string::npos;
        if (!in_key_section || line.rfind("| `", 0) != 0)
            continue;
        const size_t end = line.find('`', 3);
        ASSERT_NE(end, std::string::npos) << line;
        documented.insert(line.substr(3, end - 3));
    }
    std::set<std::string> accepted;
    for (const std::string &k : scenarioSpecKeys())
        accepted.insert(k);
    for (const std::string &k : networkSpecKeys())
        accepted.insert(k);
    EXPECT_GE(accepted.size(), 40u);
    for (const std::string &k : accepted)
        EXPECT_TRUE(documented.count(k))
            << "key '" << k
            << "' is accepted but undocumented in SCENARIOS.md";
    for (const std::string &k : documented)
        EXPECT_TRUE(accepted.count(k))
            << "key '" << k
            << "' is documented but not accepted by any spec";
}

TEST(ScenarioSpec, FluentHelpersDoNotMutateOriginal)
{
    ScenarioSpec base;
    ScenarioSpec derived = base.withRate(7)
                               .withChannel("rayleigh")
                               .withSnrDb(3.0)
                               .withPayloadBits(64);
    EXPECT_EQ(base.rate, 4);
    EXPECT_EQ(base.channel, "awgn");
    EXPECT_EQ(derived.rate, 7);
    EXPECT_EQ(derived.channel, "rayleigh");
    EXPECT_DOUBLE_EQ(derived.snrDb(), 3.0);
    EXPECT_EQ(derived.payloadBits, 64u);
}

TEST(ScenarioSpec, LabelNamesEveryAxis)
{
    ScenarioSpec s = ScenarioSpec().withRate(1).withSnrDb(7.5);
    s.payloadBits = 333;
    std::string label = s.label();
    EXPECT_NE(label.find("r1"), std::string::npos);
    EXPECT_NE(label.find("awgn"), std::string::npos);
    EXPECT_NE(label.find("7.5"), std::string::npos);
    EXPECT_NE(label.find("333"), std::string::npos);
}

TEST(ScenarioPresets, BuiltinsExist)
{
    for (const char *name :
         {"awgn-mid", "awgn-clean", "rayleigh-fading",
          "multipath-selective", "interference-tone"}) {
        EXPECT_TRUE(hasScenarioPreset(name)) << name;
        ScenarioSpec s = scenarioPreset(name);
        EXPECT_EQ(s.name, name);
    }
    EXPECT_FALSE(hasScenarioPreset("no-such-preset"));
    EXPECT_GE(scenarioPresetNames().size(), 5u);
}

TEST(ScenarioPresets, PresetsRunEndToEnd)
{
    // Every built-in preset must instantiate a working transceiver.
    for (const std::string &name : scenarioPresetNames()) {
        ScenarioSpec s = scenarioPreset(name);
        s.payloadBits = 200;
        Testbench tb(s);
        sim::FrameResult res = tb.runFrame(s.payloadBits, 0);
        EXPECT_EQ(res.txPayload.size(), 200u) << name;
        EXPECT_EQ(res.rx.payload.size(), 200u) << name;
    }
}

TEST(ScenarioSpec, SpecAndLegacyConfigBuildIdenticalTestbenches)
{
    ScenarioSpec spec = scenarioPreset("rayleigh-fading");
    spec.rate = 2;
    spec.payloadBits = 600;

    Testbench from_spec(spec);
    Testbench from_cfg(spec.testbench());

    for (std::uint64_t p = 0; p < 4; ++p) {
        PacketResult a = from_spec.runPacket(600, p);
        PacketResult b = from_cfg.runPacket(600, p);
        EXPECT_EQ(a.txPayload, b.txPayload);
        EXPECT_EQ(a.rx.payload, b.rx.payload);
        EXPECT_EQ(a.bitErrors, b.bitErrors);
    }
}

TEST(ScenarioSpec, MeasureBerRoundTripsThroughTestbenchConfig)
{
    ScenarioSpec spec;
    spec.rate = 4;
    spec.channelCfg = li::Config::fromString("snr_db=6,seed=2");
    spec.payloadBits = 500;

    // Lowering to the legacy TestbenchConfig and lifting back must
    // describe the same experiment (the migration path every former
    // measureBer(TestbenchConfig) caller took).
    ErrorStats via_spec = measureBer(spec, 20, 2);
    ErrorStats via_cfg = measureBer(
        ScenarioSpec::fromTestbench(spec.testbench(), 500), 20, 2);
    EXPECT_EQ(via_spec.bits, via_cfg.bits);
    EXPECT_EQ(via_spec.errors, via_cfg.errors);
}
