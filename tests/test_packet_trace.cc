/**
 * @file
 * Packet event trace tests: the acceptance bar is that the finalized
 * trace is a pure function of the NetworkSpec -- bit-identical at 1,
 * 2 and 8 worker threads and across the peruser/soa engines on both
 * the grid-3x3 and dense-urban-10k presets -- and that the committed
 * golden trace under data/ pins grid-3x3 byte-for-byte. Around it:
 * the text format round-trips through save()/load(), diff() localizes
 * divergences, and the trace's Ack events feed the end-to-end latency
 * histogram.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "mac/packet_trace.hh"
#include "sim/network_sim.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

std::string
calibrationPath()
{
    return std::string(WILIS_SOURCE_DIR) +
           "/data/network_calibration.txt";
}

std::string
goldenPath()
{
    return std::string(WILIS_SOURCE_DIR) + "/data/grid3x3_trace.txt";
}

NetworkSpec
tracedGrid()
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    spec.trace = true;
    return spec;
}

std::string
runTraceText(const NetworkSpec &spec, std::uint64_t slots,
             int threads)
{
    NetworkResult res = NetworkSim(spec).run(slots, threads);
    EXPECT_NE(res.trace, nullptr);
    return res.trace->toText();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

// ------------------------------------------------- the golden pin

TEST(PacketTrace, GoldenGrid3x3TraceMatchesByteForByte)
{
    // The committed fixture is the first 200 slots of grid-3x3
    // (data/grid3x3_trace.txt, written by
    // `network_sim grid-3x3 200 1 --trace ...`). Any MAC, scheduler
    // or engine change that moves a single event shows up here as a
    // byte diff -- regenerate the fixture only for intentional
    // behavior changes.
    const std::string text = runTraceText(tracedGrid(), 200, 2);
    EXPECT_EQ(text, readFile(goldenPath()))
        << mac::PacketTrace::diff(
               mac::PacketTrace::load(goldenPath()),
               *NetworkSim(tracedGrid()).run(200, 2).trace);
}

// ------------------------------ thread / engine independence (bar)

TEST(PacketTrace, Grid3x3TraceBitIdenticalAt1_2_8Threads)
{
    const NetworkSpec spec = tracedGrid();
    const std::string t1 = runTraceText(spec, 120, 1);
    EXPECT_EQ(t1, runTraceText(spec, 120, 2));
    EXPECT_EQ(t1, runTraceText(spec, 120, 8));
}

TEST(PacketTrace, Grid3x3TraceIdenticalAcrossEngines)
{
    NetworkSpec per = tracedGrid();
    per.engine = "peruser";
    NetworkSpec soa = tracedGrid();
    soa.engine = "soa";
    EXPECT_EQ(runTraceText(per, 120, 2), runTraceText(soa, 120, 2));
}

TEST(PacketTrace, DenseUrban10kTraceThreadAndEngineInvariant)
{
    NetworkSpec spec = networkPreset("dense-urban-10k");
    spec.calibrationFile = calibrationPath();
    spec.trace = true;
    NetworkSpec per = spec;
    per.engine = "peruser";
    const std::string t1 = runTraceText(spec, 16, 1);
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(t1, runTraceText(spec, 16, 8));
    EXPECT_EQ(t1, runTraceText(per, 16, 2));
}

TEST(PacketTrace, NewClassAwarePathsAreEngineInvariantToo)
{
    // The qdisc / control-class / contention wiring is duplicated
    // across both engines; the trace is the strongest equivalence
    // witness for it.
    NetworkSpec spec = tracedGrid();
    spec.traffic.qdisc = mac::QdiscKind::StrictPriority;
    spec.traffic.controlRate = 0.05;
    spec.scheduler.contention = mac::ContentionMode::Fixed;
    NetworkSpec per = spec;
    per.engine = "peruser";
    NetworkSpec soa = spec;
    soa.engine = "soa";
    const std::string t_per = runTraceText(per, 100, 1);
    EXPECT_EQ(t_per, runTraceText(soa, 100, 4));
    EXPECT_NE(t_per.find(" ctrl "), std::string::npos)
        << "control arrivals must appear in the trace";
}

// -------------------------------------------- format round-trips

TEST(PacketTrace, SaveLoadDiffRoundTrip)
{
    NetworkResult res = NetworkSim(tracedGrid()).run(80, 2);
    ASSERT_NE(res.trace, nullptr);
    const std::string path =
        testing::TempDir() + "/wilis_trace_roundtrip.txt";
    res.trace->save(path);
    const mac::PacketTrace loaded = mac::PacketTrace::load(path);
    EXPECT_TRUE(loaded.finalized());
    ASSERT_EQ(loaded.entries().size(), res.trace->entries().size());
    for (size_t i = 0; i < loaded.entries().size(); ++i)
        ASSERT_TRUE(loaded.entries()[i] == res.trace->entries()[i])
            << "entry " << i;
    EXPECT_EQ(mac::PacketTrace::diff(loaded, *res.trace), "");
    std::remove(path.c_str());
}

TEST(PacketTrace, DiffLocalizesTheFirstDivergence)
{
    mac::PacketTrace a(1);
    mac::PacketTrace b(1);
    const mac::PacketTrace::Entry e0{3, 0, 1, mac::TrafficClass::Data,
                                     0, mac::PacketEvent::Enqueue, 1,
                                     0};
    mac::PacketTrace::Entry e1 = e0;
    e1.slot = 4;
    e1.event = mac::PacketEvent::Grant;
    a.record(0, e0);
    a.record(0, e1);
    b.record(0, e0);
    mac::PacketTrace::Entry e1b = e1;
    e1b.arg0 = 2;
    b.record(0, e1b);
    a.finalize();
    b.finalize();
    const std::string d = mac::PacketTrace::diff(a, b);
    EXPECT_NE(d.find("entry 1"), std::string::npos) << d;

    mac::PacketTrace c(1);
    c.record(0, e0);
    c.finalize();
    EXPECT_NE(mac::PacketTrace::diff(a, c).find("entry count"),
              std::string::npos);
}

TEST(PacketTrace, EventNamesRoundTripAndRejectUnknown)
{
    for (auto ev :
         {mac::PacketEvent::Enqueue, mac::PacketEvent::QueueDrop,
          mac::PacketEvent::Grant, mac::PacketEvent::Tx,
          mac::PacketEvent::Ack, mac::PacketEvent::Expire})
        EXPECT_EQ(mac::packetEventFromName(mac::packetEventName(ev)),
                  ev);
    EXPECT_DEATH(mac::packetEventFromName("retx"),
                 "unknown packet event");
}

// ------------------------------------------ derived statistics

TEST(PacketTrace, AckEventsFeedEndToEndLatencyHistogram)
{
    NetworkResult res = NetworkSim(tracedGrid()).run(150, 2);
    ASSERT_NE(res.trace, nullptr);
    std::uint64_t acks = 0;
    for (const mac::PacketTrace::Entry &e : res.trace->entries()) {
        if (e.event == mac::PacketEvent::Ack) {
            ++acks;
            EXPECT_GE(e.arg1, 0) << "latency cannot be negative";
        }
    }
    EXPECT_EQ(acks, res.aggregate.delivered)
        << "one ack per in-order delivery";
    EXPECT_EQ(res.aggregate.e2eLatencyHist.total(), acks);
    // End-to-end latency includes the queue wait, so it dominates
    // the ARQ-only delivery latency.
    EXPECT_GE(res.aggregate.e2eLatencyHist.quantile(0.5),
              res.aggregate.latencyHist.quantile(0.5));
}

TEST(PacketTrace, SingleCellEngineTracesAndDerivesLatency)
{
    NetworkSpec spec;
    spec.numUsers = 6;
    spec.link.payloadBits = 400;
    spec.link.channelCfg = li::Config::fromString("snr_db=12");
    spec.trace = true;
    const std::string t1 = runTraceText(spec, 60, 1);
    EXPECT_EQ(t1, runTraceText(spec, 60, 8))
        << "single-cell trace must be thread-invariant too";
    NetworkResult res = NetworkSim(spec).run(60, 2);
    ASSERT_NE(res.trace, nullptr);
    EXPECT_GT(res.aggregate.e2eLatencyHist.total(), 0u);
    for (const mac::PacketTrace::Entry &e : res.trace->entries())
        EXPECT_EQ(e.cell, 0);
}

TEST(PacketTrace, TraceOffLeavesResultNullAndHistogramEmpty)
{
    NetworkSpec spec = tracedGrid();
    spec.trace = false;
    NetworkResult res = NetworkSim(spec).run(40, 2);
    EXPECT_EQ(res.trace, nullptr);
    EXPECT_EQ(res.aggregate.e2eLatencyHist.total(), 0u);
}
