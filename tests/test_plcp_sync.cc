/**
 * @file
 * PLCP framing and synchronization tests: SIGNAL field round trips
 * and error detection, preamble structure, Schmidl-Cox detection at
 * unknown offsets, CFO estimation/correction, and the full
 * detect -> header -> payload receive chain over a noisy channel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hh"
#include "common/random.hh"
#include "phy/plcp.hh"
#include "phy/preamble.hh"
#include "phy/sync.hh"

using namespace wilis;
using namespace wilis::phy;

namespace {

BitVec
randomBytesAsBits(size_t bytes, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    BitVec v(bytes * 8);
    for (auto &b : v)
        b = rng.nextBit();
    return v;
}

} // namespace

TEST(Signal, RateBitsRoundTripAllRates)
{
    for (int r = 0; r < kNumRates; ++r)
        EXPECT_EQ(Signal::rateFromBits(Signal::rateBits(r)), r);
    EXPECT_EQ(Signal::rateFromBits(0b0000), -1);
}

TEST(Signal, BitsRoundTrip)
{
    for (int r = 0; r < kNumRates; ++r) {
        for (int len : {1, 100, 1500, 4095}) {
            SignalField f;
            f.rate = r;
            f.lengthBytes = len;
            SignalField g;
            ASSERT_TRUE(Signal::decodeBits(Signal::encodeBits(f), g));
            EXPECT_EQ(g, f);
        }
    }
}

TEST(Signal, ParityErrorDetected)
{
    SignalField f;
    f.rate = 4;
    f.lengthBytes = 1000;
    BitVec bits = Signal::encodeBits(f);
    bits[8] ^= 1; // corrupt one length bit
    SignalField g;
    EXPECT_FALSE(Signal::decodeBits(bits, g));
}

TEST(Signal, TailBitsAreZero)
{
    SignalField f;
    f.rate = 0;
    f.lengthBytes = 4095;
    BitVec bits = Signal::encodeBits(f);
    for (int i = 18; i < 24; ++i)
        EXPECT_EQ(bits[static_cast<size_t>(i)], 0);
}

TEST(Signal, ModulateDemodulateNoiseless)
{
    SampleVec flat_h(64, Sample(1.0, 0.0));
    for (int r = 0; r < kNumRates; ++r) {
        SignalField f;
        f.rate = r;
        f.lengthBytes = 77 + r;
        SampleVec sym = Signal::modulate(f);
        ASSERT_EQ(sym.size(), 80u);
        SignalField g;
        ASSERT_TRUE(Signal::demodulate(sym, flat_h, g));
        EXPECT_EQ(g, f);
    }
}

TEST(Preamble, StructureAndPeriodicity)
{
    SampleVec sts = Preamble::shortTraining();
    ASSERT_EQ(sts.size(), 160u);
    // Periodic with period 16.
    for (size_t i = 0; i + 16 < sts.size(); ++i)
        ASSERT_LT(std::abs(sts[i] - sts[i + 16]), 1e-12) << i;

    SampleVec lts = Preamble::longTraining();
    ASSERT_EQ(lts.size(), 160u);
    // Guard is the symbol tail; the two symbols repeat.
    for (int k = 0; k < 64; ++k)
        ASSERT_LT(std::abs(lts[static_cast<size_t>(32 + k)] -
                           lts[static_cast<size_t>(96 + k)]),
                  1e-12);
    for (int k = 0; k < 32; ++k)
        ASSERT_LT(std::abs(lts[static_cast<size_t>(k)] -
                           lts[static_cast<size_t>(96 + 32 + k)]),
                  1e-12);

    EXPECT_EQ(Preamble::full().size(),
              static_cast<size_t>(Preamble::kTotalLen));
}

TEST(Preamble, LongTrainingHasGoodAutocorrelation)
{
    // The LTS must correlate sharply with itself and weakly with
    // shifted versions (that's what makes fine timing work).
    SampleVec lts = Preamble::longTrainingSymbol();
    auto corr = [&](int shift) {
        Sample acc(0, 0);
        for (int k = 0; k < 64; ++k)
            acc += lts[static_cast<size_t>((k + shift) % 64)] *
                   std::conj(lts[static_cast<size_t>(k)]);
        return std::abs(acc);
    };
    double peak = corr(0);
    for (int shift = 4; shift < 60; ++shift)
        EXPECT_LT(corr(shift), 0.5 * peak) << "shift " << shift;
}

TEST(Sync, LocatesFrameAtKnownOffset)
{
    PlcpTransmitter tx;
    BitVec payload = randomBytesAsBits(100, 5);
    SampleVec frame = tx.buildFrame(2, payload);

    for (size_t offset : {0u, 37u, 250u}) {
        // Leading low-power noise, then the frame.
        SplitMix64 rng(offset);
        SampleVec rx(offset);
        for (auto &s : rx)
            s = 0.03 * Sample(rng.nextDouble() - 0.5,
                              rng.nextDouble() - 0.5);
        rx.insert(rx.end(), frame.begin(), frame.end());

        Synchronizer sync;
        SyncResult res = sync.locate(rx);
        ASSERT_TRUE(res.detected) << "offset " << offset;
        EXPECT_EQ(res.frameStart, offset);
        EXPECT_LT(std::abs(res.cfoHz), 500.0);
    }
}

TEST(Sync, EstimatesInjectedCfo)
{
    PlcpTransmitter tx;
    BitVec payload = randomBytesAsBits(64, 9);
    SampleVec frame = tx.buildFrame(0, payload);

    for (double cfo : {-80000.0, -12000.0, 30000.0, 120000.0}) {
        SampleVec rx = frame;
        Synchronizer::applyCfo(rx, cfo);
        Synchronizer sync;
        SyncResult res = sync.locate(rx);
        ASSERT_TRUE(res.detected) << "cfo " << cfo;
        EXPECT_NEAR(res.cfoHz, cfo, std::abs(cfo) * 0.02 + 300.0)
            << "cfo " << cfo;
    }
}

TEST(Plcp, FrameRoundTripNoiseless)
{
    PlcpTransmitter tx;
    PlcpReceiver rx;
    for (int rate : {0, 3, 7}) {
        BitVec payload = randomBytesAsBits(200, 33 + rate);
        SampleVec frame = tx.buildFrame(rate, payload);
        EXPECT_EQ(frame.size(), tx.frameSamples(rate, payload.size()));
        PlcpRxResult res = rx.receiveFrame(frame);
        ASSERT_TRUE(res.headerOk) << "rate " << rate;
        EXPECT_EQ(res.header.rate, rate);
        EXPECT_EQ(res.header.lengthBytes, 200);
        EXPECT_EQ(res.payload, payload);
    }
}

TEST(Plcp, FullChainWithOffsetCfoAndNoise)
{
    // The complete unknown-arrival receive chain: detect the frame,
    // correct CFO, estimate the channel from the preamble, decode
    // the header, decode the payload.
    PlcpTransmitter tx;
    BitVec payload = randomBytesAsBits(150, 77);
    SampleVec frame = tx.buildFrame(2, payload);

    SampleVec rx_stream(123, Sample(0, 0));
    rx_stream.insert(rx_stream.end(), frame.begin(), frame.end());
    Synchronizer::applyCfo(rx_stream, 40000.0);
    channel::AwgnChannel chan(20.0, 3);
    chan.apply(rx_stream, 0);

    Synchronizer sync;
    SyncResult found = sync.locate(rx_stream);
    ASSERT_TRUE(found.detected);
    ASSERT_NEAR(static_cast<double>(found.frameStart), 123.0, 1.0);

    Synchronizer::applyCfo(rx_stream, -found.cfoHz);
    SampleVec aligned(rx_stream.begin() +
                          static_cast<long>(found.frameStart),
                      rx_stream.end());
    PlcpReceiver prx;
    PlcpRxResult res = prx.receiveFrame(aligned);
    ASSERT_TRUE(res.headerOk);
    EXPECT_EQ(res.header.rate, 2);
    EXPECT_EQ(res.header.lengthBytes, 150);
    EXPECT_EQ(res.payload, payload);
}

TEST(Plcp, PreambleChannelEstimationHandlesFlatGain)
{
    // Scale + rotate the whole frame: preamble-based estimation must
    // absorb it without external CSI.
    PlcpTransmitter tx;
    BitVec payload = randomBytesAsBits(80, 11);
    SampleVec frame = tx.buildFrame(4, payload);
    Sample g = std::polar(0.6, 1.1);
    for (auto &s : frame)
        s *= g;

    PlcpReceiver rx;
    PlcpRxResult res = rx.receiveFrame(frame);
    ASSERT_TRUE(res.headerOk);
    EXPECT_EQ(res.payload, payload);
}
