/**
 * @file
 * Scenario-grid sweep tests: cell layout and seeding are pinned as a
 * replayability contract, and the whole grid -- as well as the flat
 * packet sweep under it -- must produce bit-identical results at 1,
 * 2 and 8 worker threads (every random stream is keyed by packet
 * index, never by worker id).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "sim/scenario_grid.hh"
#include "sim/sweep.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

ScenarioGrid
smallGrid()
{
    ScenarioGrid grid;
    grid.base = scenarioPreset("awgn-mid");
    grid.rates = {0, 2, 4, 6};
    grid.channels = {"awgn", "rayleigh"};
    grid.snrsDb = {6.0, 12.0};
    grid.payloads = {192};
    grid.seed = 0xABCD;
    return grid; // 4 x 2 x 2 x 1 = 16 cells
}

std::vector<CellResult>
runGrid(const ScenarioGrid &grid, int threads, std::uint64_t packets)
{
    GridSweepOptions opt;
    opt.packetsPerCell = packets;
    opt.threads = threads;
    return sweepGrid(grid, opt);
}

} // namespace

TEST(ScenarioGrid, CellCountIsAxisProduct)
{
    ScenarioGrid grid = smallGrid();
    EXPECT_EQ(grid.cellCount(), 16u);
    grid.payloads = {100, 200, 300};
    EXPECT_EQ(grid.cellCount(), 48u);
    grid.channels.clear(); // empty axis = base value
    EXPECT_EQ(grid.cellCount(), 24u);
}

TEST(ScenarioGrid, CellLayoutIsRowMajorAndStable)
{
    ScenarioGrid grid = smallGrid();
    grid.payloads = {100, 200};

    // payload is the fastest axis, rate the slowest.
    EXPECT_EQ(grid.cell(0).payloadBits, 100u);
    EXPECT_EQ(grid.cell(1).payloadBits, 200u);
    EXPECT_EQ(grid.cell(0).rate, 0);
    EXPECT_EQ(grid.cell(grid.cellCount() - 1).rate, 6);
    EXPECT_EQ(grid.cell(0).channel, "awgn");
    EXPECT_DOUBLE_EQ(grid.cell(0).snrDb(), 6.0);
    EXPECT_DOUBLE_EQ(grid.cell(2).snrDb(), 12.0);
}

TEST(ScenarioGrid, CellSeedsAreDistinctAndReplayable)
{
    ScenarioGrid grid = smallGrid();
    ScenarioSpec a0 = grid.cell(0);
    ScenarioSpec a1 = grid.cell(1);
    EXPECT_NE(a0.payloadSeed, a1.payloadSeed);
    EXPECT_NE(a0.channelCfg.getString("seed"),
              a1.channelCfg.getString("seed"));

    // Replayable: asking for the same cell again gives the same spec.
    ScenarioSpec again = grid.cell(0);
    EXPECT_EQ(a0.payloadSeed, again.payloadSeed);
    EXPECT_EQ(a0.channelCfg.getString("seed"),
              again.channelCfg.getString("seed"));
    EXPECT_EQ(a0.label(), again.label());
}

TEST(ScenarioGrid, SixteenCellGridDeterministicAt1_2_8Threads)
{
    ScenarioGrid grid = smallGrid();
    const std::uint64_t packets = 12;

    std::vector<CellResult> t1 = runGrid(grid, 1, packets);
    std::vector<CellResult> t2 = runGrid(grid, 2, packets);
    std::vector<CellResult> t8 = runGrid(grid, 8, packets);

    ASSERT_EQ(t1.size(), 16u);
    ASSERT_EQ(t2.size(), 16u);
    ASSERT_EQ(t8.size(), 16u);
    for (size_t c = 0; c < t1.size(); ++c) {
        EXPECT_EQ(t1[c].cellIndex, c);
        EXPECT_EQ(t1[c].bits.bits, t2[c].bits.bits) << "cell " << c;
        EXPECT_EQ(t1[c].bits.errors, t2[c].bits.errors)
            << "cell " << c;
        EXPECT_EQ(t1[c].bits.errors, t8[c].bits.errors)
            << "cell " << c;
        EXPECT_EQ(t1[c].packetErrors, t2[c].packetErrors)
            << "cell " << c;
        EXPECT_EQ(t1[c].packetErrors, t8[c].packetErrors)
            << "cell " << c;
        EXPECT_EQ(t1[c].packets, packets);
    }
}

TEST(ScenarioGrid, OnCellHookSeesEveryCell)
{
    ScenarioGrid grid = smallGrid();
    GridSweepOptions opt;
    opt.packetsPerCell = 2;
    opt.threads = 4;
    std::atomic<std::uint64_t> seen{0};
    std::atomic<std::uint64_t> mask{0};
    opt.onCell = [&](const CellResult &c) {
        seen.fetch_add(1);
        mask.fetch_or(1ull << c.cellIndex);
    };
    sweepGrid(grid, opt);
    EXPECT_EQ(seen.load(), 16u);
    EXPECT_EQ(mask.load(), 0xFFFFull);
}

// ---------------------------------------------------------------
// Flat packet-sweep determinism: the per-packet digest (not just the
// aggregate BER) must be independent of the thread count, proving
// RNG streams are keyed by packet index, never by worker id.
// ---------------------------------------------------------------

namespace {

std::uint64_t
sweepDigest(const ScenarioSpec &spec, std::uint64_t packets,
            int threads)
{
    // Order-independent digest over (packet index, bit errors).
    std::atomic<std::uint64_t> digest{0};
    sweepFrames(spec, packets, threads,
                [&](int, const FrameResult &res, std::uint64_t p) {
                    std::uint64_t h =
                        (p + 1) * 0x9E3779B97F4A7C15ull ^
                        (res.bitErrors + 0xD1B54A32D192ED03ull);
                    h ^= h >> 29;
                    digest.fetch_xor(h * 0xBF58476D1CE4E5B9ull);
                });
    return digest.load();
}

} // namespace

TEST(SweepFrames, PerPacketResultsIndependentOfThreadCount)
{
    ScenarioSpec spec = scenarioPreset("rayleigh-fading");
    spec.rate = 4;
    spec.payloadBits = 400;

    std::uint64_t d1 = sweepDigest(spec, 30, 1);
    std::uint64_t d2 = sweepDigest(spec, 30, 2);
    std::uint64_t d8 = sweepDigest(spec, 30, 8);
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1, d8);
}

TEST(SweepFrames, WorkerIdsArePartitionNotPhysics)
{
    // Same packet index must produce the same bit-error count no
    // matter which worker runs it: compare a 1-thread map against an
    // 8-thread map.
    ScenarioSpec spec;
    spec.rate = 5;
    spec.channelCfg = li::Config::fromString("snr_db=7,seed=3");
    spec.payloadBits = 300;
    const std::uint64_t packets = 24;

    std::vector<std::uint64_t> serial(packets), parallel(packets);
    sweepFrames(spec, packets, 1,
                [&](int, const FrameResult &r, std::uint64_t p) {
                    serial[p] = r.bitErrors;
                });
    std::mutex m;
    sweepFrames(spec, packets, 8,
                [&](int, const FrameResult &r, std::uint64_t p) {
                    std::lock_guard<std::mutex> lock(m);
                    parallel[p] = r.bitErrors;
                });
    EXPECT_EQ(serial, parallel);
}
