/**
 * @file
 * Tests for the frame arena and the zero-copy packet pipeline built
 * on it: bump allocation and reset semantics, block coalescing, and
 * the central tentpole claim -- a warmed-up Testbench::runFrame()
 * performs no heap allocations at all.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/frame_arena.hh"
#include "sim/scenario.hh"
#include "sim/testbench.hh"

using namespace wilis;

// ---------------------------------------------------------------
// Global allocation counter: every operator new in this test binary
// bumps it, so a region of code can be asserted allocation-free.
// ---------------------------------------------------------------

static std::atomic<std::uint64_t> g_news{0};

void *
operator new(size_t sz)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(sz ? sz : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t sz)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(sz ? sz : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}

// ---------------------------------------------------------------

TEST(FrameArena, AllocatesDistinctAlignedSpans)
{
    FrameArena arena(256);
    auto a = arena.alloc<Bit>(7);
    auto b = arena.alloc<Sample>(3);
    auto c = arena.alloc<SoftBit>(5);
    EXPECT_EQ(a.size(), 7u);
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(c.size(), 5u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) %
                  alignof(Sample),
              0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data()) %
                  alignof(SoftBit),
              0u);

    // Disjoint storage: writes through one span don't alias another.
    std::fill(a.begin(), a.end(), Bit(1));
    std::fill(c.begin(), c.end(), SoftBit(-3));
    EXPECT_EQ(a[6], 1);
    EXPECT_EQ(c[0], -3);
}

TEST(FrameArena, BytesUsedTracksAllocations)
{
    FrameArena arena(1024);
    EXPECT_EQ(arena.bytesUsed(), 0u);
    arena.alloc<Bit>(100);
    EXPECT_EQ(arena.bytesUsed(), 100u);
    arena.reset();
    EXPECT_EQ(arena.bytesUsed(), 0u);
    EXPECT_GE(arena.highWater(), 100u);
}

TEST(FrameArena, GrowsAndCoalescesOnReset)
{
    FrameArena arena(64);
    const std::uint64_t initial = arena.blockAllocations();

    // Overflow the first block several times.
    for (int i = 0; i < 4; ++i)
        arena.alloc<Bit>(200);
    EXPECT_GT(arena.blockAllocations(), initial);

    // After one reset the arena coalesces; repeating the same frame
    // shape must never allocate again.
    arena.reset();
    const std::uint64_t warmed = arena.blockAllocations();
    for (int frame = 0; frame < 5; ++frame) {
        for (int i = 0; i < 4; ++i)
            arena.alloc<Bit>(200);
        arena.reset();
    }
    EXPECT_EQ(arena.blockAllocations(), warmed);
}

TEST(FrameArena, DupCopies)
{
    FrameArena arena;
    const Bit src[4] = {1, 0, 1, 1};
    auto d = arena.dup<Bit>(std::span<const Bit>(src, 4));
    EXPECT_EQ(d[0], 1);
    EXPECT_EQ(d[1], 0);
    EXPECT_EQ(d[3], 1);
    EXPECT_NE(d.data(), src);
}

// ---------------------------------------------------------------
// The tentpole acceptance: after a one-packet warm-up, the whole
// transmit -> channel -> receive -> decode flow of runFrame() makes
// zero heap allocations, for every decoder and channel family.
// ---------------------------------------------------------------

namespace {

std::uint64_t
countRunFrameAllocs(sim::Testbench &tb, size_t payload_bits)
{
    // Warm up arenas and decoder scratch.
    for (std::uint64_t p = 0; p < 3; ++p)
        tb.runFrame(payload_bits, p);

    const std::uint64_t before =
        g_news.load(std::memory_order_relaxed);
    std::uint64_t errors = 0;
    for (std::uint64_t p = 3; p < 13; ++p)
        errors += tb.runFrame(payload_bits, p).bitErrors;
    const std::uint64_t after =
        g_news.load(std::memory_order_relaxed);
    (void)errors;
    return after - before;
}

} // namespace

TEST(ZeroCopyPipeline, RunFrameIsAllocationFreePerDecoder)
{
    for (const char *decoder : {"viterbi", "sova", "bcjr",
                                "bcjr-logmap"}) {
        sim::ScenarioSpec spec;
        spec.rate = 4;
        spec.rx.decoder = decoder;
        spec.channelCfg = li::Config::fromString("snr_db=8,seed=9");
        sim::Testbench tb(spec);
        EXPECT_EQ(countRunFrameAllocs(tb, 1000), 0u)
            << "decoder " << decoder;
    }
}

TEST(ZeroCopyPipeline, RunFrameIsAllocationFreePerChannel)
{
    for (const char *channel : {"awgn", "rayleigh", "multipath",
                                "interference"}) {
        sim::ScenarioSpec spec;
        spec.rate = 2;
        spec.channel = channel;
        spec.channelCfg = li::Config::fromString("snr_db=12,seed=4");
        sim::Testbench tb(spec);
        EXPECT_EQ(countRunFrameAllocs(tb, 800), 0u)
            << "channel " << channel;
    }
}

TEST(ZeroCopyPipeline, ArenaBlockCountStableAcrossPackets)
{
    sim::ScenarioSpec spec;
    spec.rate = 7; // largest frame footprint
    sim::Testbench tb(spec);
    tb.runFrame(1704, 0);
    tb.runFrame(1704, 1);
    const std::uint64_t warmed = tb.arena().blockAllocations();
    for (std::uint64_t p = 2; p < 10; ++p)
        tb.runFrame(1704, p);
    EXPECT_EQ(tb.arena().blockAllocations(), warmed);
}

TEST(ZeroCopyPipeline, FrameMatchesLegacyPacketPath)
{
    sim::ScenarioSpec spec;
    spec.rate = 5;
    spec.channelCfg = li::Config::fromString("snr_db=7,seed=11");
    sim::Testbench arena_tb(spec);
    sim::Testbench legacy_tb(spec.testbench());

    for (std::uint64_t p = 0; p < 5; ++p) {
        sim::FrameResult fr = arena_tb.runFrame(900, p);
        // Copy out before the next runFrame invalidates the views.
        sim::PacketResult from_frame = fr.toPacketResult();
        sim::PacketResult legacy = legacy_tb.runPacket(900, p);

        EXPECT_EQ(from_frame.txPayload, legacy.txPayload);
        EXPECT_EQ(from_frame.rx.payload, legacy.rx.payload);
        EXPECT_EQ(from_frame.bitErrors, legacy.bitErrors);
        ASSERT_EQ(from_frame.rx.soft.size(), legacy.rx.soft.size());
        for (size_t i = 0; i < legacy.rx.soft.size(); ++i) {
            EXPECT_EQ(from_frame.rx.soft[i].bit,
                      legacy.rx.soft[i].bit);
            EXPECT_EQ(from_frame.rx.soft[i].llr,
                      legacy.rx.soft[i].llr);
        }
    }
}
