/**
 * @file
 * Mapper and soft-demapper tests: constellation normalization, Gray
 * adjacency, and noiseless demap consistency (the sign of every soft
 * metric must recover the transmitted bit).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "phy/demapper.hh"
#include "phy/mapper.hh"

using namespace wilis;
using namespace wilis::phy;

namespace {

int
hammingDistance(int a, int b)
{
    int x = a ^ b;
    int d = 0;
    while (x) {
        d += x & 1;
        x >>= 1;
    }
    return d;
}

} // namespace

class MapperAllMods : public ::testing::TestWithParam<Modulation>
{};

INSTANTIATE_TEST_SUITE_P(AllModulations, MapperAllMods,
                         ::testing::Values(Modulation::BPSK,
                                           Modulation::QPSK,
                                           Modulation::QAM16,
                                           Modulation::QAM64));

TEST_P(MapperAllMods, UnitAverageEnergy)
{
    Mapper m(GetParam());
    auto pts = m.constellation();
    double e = 0.0;
    for (const auto &p : pts)
        e += std::norm(p);
    EXPECT_NEAR(e / static_cast<double>(pts.size()), 1.0, 1e-12);
}

TEST_P(MapperAllMods, AllPointsDistinct)
{
    Mapper m(GetParam());
    auto pts = m.constellation();
    for (size_t i = 0; i < pts.size(); ++i) {
        for (size_t j = i + 1; j < pts.size(); ++j)
            EXPECT_GT(std::abs(pts[i] - pts[j]), 1e-9)
                << "points " << i << "," << j;
    }
}

TEST_P(MapperAllMods, GrayAdjacency)
{
    // Nearest-neighbour constellation points must differ in exactly
    // one bit (minimizes bit errors for symbol-neighbour mistakes).
    Mapper m(GetParam());
    auto pts = m.constellation();
    double min_dist = 1e9;
    for (size_t i = 0; i < pts.size(); ++i)
        for (size_t j = i + 1; j < pts.size(); ++j)
            min_dist = std::min(min_dist, std::abs(pts[i] - pts[j]));

    for (size_t i = 0; i < pts.size(); ++i) {
        for (size_t j = i + 1; j < pts.size(); ++j) {
            if (std::abs(pts[i] - pts[j]) < min_dist * 1.001) {
                EXPECT_EQ(hammingDistance(static_cast<int>(i),
                                          static_cast<int>(j)),
                          1)
                    << "neighbours " << i << "," << j;
            }
        }
    }
}

TEST_P(MapperAllMods, NoiselessDemapRecoversBits)
{
    Modulation mod = GetParam();
    Mapper m(mod);
    Demapper::Config dcfg;
    dcfg.softWidth = 8;
    Demapper dm(mod, dcfg);

    int n = bitsPerSubcarrier(mod);
    for (int v = 0; v < (1 << n); ++v) {
        Bit bits[6];
        for (int b = 0; b < n; ++b)
            bits[b] = static_cast<Bit>((v >> (n - 1 - b)) & 1);
        Sample y = m.map(bits);
        SoftVec soft;
        dm.demap(y, soft);
        ASSERT_EQ(soft.size(), static_cast<size_t>(n));
        for (int b = 0; b < n; ++b) {
            EXPECT_EQ(soft[static_cast<size_t>(b)] > 0 ? 1 : 0,
                      bits[b])
                << modulationName(mod) << " pattern " << v << " bit "
                << b << " soft " << soft[static_cast<size_t>(b)];
            EXPECT_NE(soft[static_cast<size_t>(b)], 0)
                << "noiseless metric must be nonzero";
        }
    }
}

TEST_P(MapperAllMods, QuantizerSaturates)
{
    Modulation mod = GetParam();
    Demapper::Config dcfg;
    dcfg.softWidth = 4;
    dcfg.fullScale = 1.0;
    Demapper dm(mod, dcfg);
    SoftVec soft;
    dm.demap(Sample(100.0, 100.0), soft);
    for (SoftBit s : soft) {
        EXPECT_LE(s, 7);
        EXPECT_GE(s, -8);
    }
    // The sign bit metric must peg at the positive rail.
    EXPECT_EQ(soft[0], 7);
}

TEST(Demapper, SnrScalingScalesMetrics)
{
    Demapper::Config plain;
    plain.softWidth = 16;
    plain.fullScale = 64.0;
    Demapper::Config scaled = plain;
    scaled.applySnrScaling = true;
    scaled.esN0 = 4.0; // 6 dB

    Demapper d_plain(Modulation::QPSK, plain);
    Demapper d_scaled(Modulation::QPSK, scaled);

    Sample y(0.4, -0.3);
    std::vector<double> m_plain, m_scaled;
    d_plain.demapReal(y, m_plain);
    d_scaled.demapReal(y, m_scaled);
    double factor = 4.0 * modulationLlrScale(Modulation::QPSK);
    for (size_t i = 0; i < m_plain.size(); ++i)
        EXPECT_NEAR(m_scaled[i], m_plain[i] * factor, 1e-12);
}

TEST(Demapper, Qam16InnerBitMetricPiecewise)
{
    // For the 16-QAM axis the second bit's metric is 2k - |v|:
    // positive inside the +-2k band (inner points), negative outside.
    Demapper::Config dcfg;
    dcfg.softWidth = 12;
    Demapper dm(Modulation::QAM16, dcfg);
    const double k = 1.0 / std::sqrt(10.0);

    std::vector<double> m;
    dm.demapReal(Sample(1.0 * k, 0.0), m); // inner point
    EXPECT_GT(m[1], 0.0);
    m.clear();
    dm.demapReal(Sample(3.0 * k, 0.0), m); // outer point
    EXPECT_LT(m[1], 0.0);
}
