/**
 * @file
 * Interleaver unit tests: permutation validity, inverse property,
 * standard-defined spreading behaviour, and stream processing.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "phy/interleaver.hh"

using namespace wilis;
using namespace wilis::phy;

class InterleaverAllMods
    : public ::testing::TestWithParam<Modulation>
{};

INSTANTIATE_TEST_SUITE_P(AllModulations, InterleaverAllMods,
                         ::testing::Values(Modulation::BPSK,
                                           Modulation::QPSK,
                                           Modulation::QAM16,
                                           Modulation::QAM64));

TEST_P(InterleaverAllMods, IsAPermutation)
{
    Interleaver il(GetParam());
    std::set<int> seen;
    for (int k = 0; k < il.blockSize(); ++k) {
        int j = il.txPosition(k);
        EXPECT_GE(j, 0);
        EXPECT_LT(j, il.blockSize());
        EXPECT_TRUE(seen.insert(j).second) << "duplicate target " << j;
    }
}

TEST_P(InterleaverAllMods, DeinterleaveInvertsInterleave)
{
    Interleaver il(GetParam());
    SplitMix64 rng(99);
    BitVec block(static_cast<size_t>(il.blockSize()));
    for (auto &b : block)
        b = rng.nextBit();

    BitVec inter = il.interleave(block);
    // Convert to soft domain for the deinterleave path.
    SoftVec soft(inter.size());
    for (size_t i = 0; i < inter.size(); ++i)
        soft[i] = inter[i] ? 1 : -1;
    SoftVec deint = il.deinterleave(soft);
    for (size_t i = 0; i < block.size(); ++i)
        EXPECT_EQ(deint[i] > 0 ? 1 : 0, block[i]) << "bit " << i;
}

TEST_P(InterleaverAllMods, AdjacentBitsLandOnDistinctSubcarriers)
{
    // Property guaranteed by the first permutation: adjacent coded
    // bits map onto nonadjacent subcarriers.
    Interleaver il(GetParam());
    int n_bpsc = bitsPerSubcarrier(GetParam());
    for (int k = 0; k + 1 < il.blockSize(); ++k) {
        int sc0 = il.txPosition(k) / n_bpsc;
        int sc1 = il.txPosition(k + 1) / n_bpsc;
        EXPECT_NE(sc0, sc1) << "bits " << k << "," << k + 1;
    }
}

TEST(Interleaver, KnownBpskFirstEntries)
{
    // For BPSK (N_CBPS=48, s=1): j = i = 3*(k mod 16) + floor(k/16).
    Interleaver il(Modulation::BPSK);
    EXPECT_EQ(il.txPosition(0), 0);
    EXPECT_EQ(il.txPosition(1), 3);
    EXPECT_EQ(il.txPosition(2), 6);
    EXPECT_EQ(il.txPosition(15), 45);
    EXPECT_EQ(il.txPosition(16), 1);
    EXPECT_EQ(il.txPosition(47), 47);
}

TEST(Interleaver, StreamMatchesPerBlock)
{
    Interleaver il(Modulation::QAM16);
    SplitMix64 rng(5);
    const int blocks = 4;
    BitVec stream(static_cast<size_t>(blocks * il.blockSize()));
    for (auto &b : stream)
        b = rng.nextBit();

    BitVec whole = il.interleaveStream(stream);
    for (int blk = 0; blk < blocks; ++blk) {
        BitVec one(stream.begin() + blk * il.blockSize(),
                   stream.begin() + (blk + 1) * il.blockSize());
        BitVec expect = il.interleave(one);
        for (int i = 0; i < il.blockSize(); ++i)
            ASSERT_EQ(whole[static_cast<size_t>(
                          blk * il.blockSize() + i)],
                      expect[static_cast<size_t>(i)])
                << "block " << blk << " bit " << i;
    }
}

TEST(InterleaverDeath, WrongBlockSizePanics)
{
    Interleaver il(Modulation::QPSK);
    BitVec bad(17);
    EXPECT_DEATH(il.interleave(bad), "block size");
}
