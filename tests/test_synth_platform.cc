/**
 * @file
 * Area model and platform tests: the Figure 8 reproduction bands,
 * the model's parameter sensitivities, link/batching arithmetic, and
 * the analytic Figure 2 co-simulation model.
 */

#include <gtest/gtest.h>

#include "platform/cosim.hh"
#include "platform/link.hh"
#include "synth/area.hh"

using namespace wilis;
using namespace wilis::synth;
using namespace wilis::platform;

namespace {

/** |got - expect| within frac of expect. */
::testing::AssertionResult
within(long got, long expect, double frac)
{
    double err = std::abs(static_cast<double>(got - expect)) /
                 static_cast<double>(expect);
    if (err <= frac)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << got << " not within " << frac * 100 << "% of " << expect;
}

AreaEstimate
rowNamed(const std::vector<AreaRow> &rows, const std::string &name)
{
    for (const auto &r : rows) {
        if (r.name == name)
            return r.area;
    }
    ADD_FAILURE() << "no row named " << name;
    return {};
}

} // namespace

TEST(AreaModel, Figure8TotalsWithinTenPercent)
{
    DecoderAreaParams p; // defaults = paper configuration
    auto vit = viterbiAreaReport(p)[0].area;
    auto sova = sovaAreaReport(p)[0].area;
    auto bcjr = bcjrAreaReport(p)[0].area;

    EXPECT_TRUE(within(vit.luts, 7569, 0.10));
    EXPECT_TRUE(within(vit.registers, 4538, 0.10));
    EXPECT_TRUE(within(sova.luts, 15114, 0.10));
    EXPECT_TRUE(within(sova.registers, 15168, 0.10));
    EXPECT_TRUE(within(bcjr.luts, 32936, 0.10));
    EXPECT_TRUE(within(bcjr.registers, 38420, 0.10));
}

TEST(AreaModel, Figure8SubBlocksWithinFifteenPercent)
{
    DecoderAreaParams p;
    auto vit = viterbiAreaReport(p);
    auto sova = sovaAreaReport(p);
    auto bcjr = bcjrAreaReport(p);

    EXPECT_TRUE(within(rowNamed(vit, "Traceback Unit").luts, 5144,
                       0.15));
    EXPECT_TRUE(within(rowNamed(vit, "Traceback Unit").registers,
                       3927, 0.15));
    EXPECT_TRUE(within(rowNamed(sova, "Soft TU").luts, 13456, 0.15));
    EXPECT_TRUE(within(rowNamed(sova, "Soft TU").registers, 13402,
                       0.15));
    EXPECT_TRUE(within(rowNamed(sova, "Soft Path Detect").luts, 7362,
                       0.15));
    EXPECT_TRUE(
        within(rowNamed(bcjr, "Soft Decision Unit").luts, 6561, 0.15));
    EXPECT_TRUE(within(rowNamed(bcjr, "Final Rev. Buf.").registers,
                       30048, 0.15));
    EXPECT_TRUE(within(rowNamed(bcjr, "Initial Rev. Buf.").registers,
                       2608, 0.15));
    EXPECT_TRUE(within(rowNamed(bcjr, "Branch Metric Unit").luts, 63,
                       0.10));
    EXPECT_TRUE(within(rowNamed(bcjr, "Path Metric Unit").luts, 4672,
                       0.10));
}

TEST(AreaModel, PaperRatiosHold)
{
    // Section 4.4.3: "BCJR is about twice the size of SOVA...
    // SOVA itself is about twice the size of Viterbi."
    DecoderAreaParams p;
    double vit = static_cast<double>(viterbiAreaReport(p)[0].area.luts);
    double sova = static_cast<double>(sovaAreaReport(p)[0].area.luts);
    double bcjr = static_cast<double>(bcjrAreaReport(p)[0].area.luts);
    EXPECT_NEAR(bcjr / sova, 2.0, 0.45);
    EXPECT_NEAR(sova / vit, 2.0, 0.45);
}

TEST(AreaModel, ShrinkingWindowShrinksArea)
{
    // "The area of both SOVA and BCJR can be reduced by shrinking
    // the length of the backward analysis."
    DecoderAreaParams big;
    DecoderAreaParams small = big;
    small.window = 32;
    EXPECT_LT(sovaAreaReport(small)[0].area.luts,
              sovaAreaReport(big)[0].area.luts);
    EXPECT_LT(bcjrAreaReport(small)[0].area.registers,
              bcjrAreaReport(big)[0].area.registers);
    // BCJR registers scale ~linearly with n (reversal buffers).
    double ratio =
        static_cast<double>(bcjrAreaReport(small)[0].area.registers) /
        static_cast<double>(bcjrAreaReport(big)[0].area.registers);
    EXPECT_NEAR(ratio, 0.5, 0.12);
}

TEST(AreaModel, ReversalBuffersDominateBcjrRegisters)
{
    DecoderAreaParams p;
    auto rows = bcjrAreaReport(p);
    long total = rows[0].area.registers;
    long bufs = rowNamed(rows, "Initial Rev. Buf.").registers +
                rowNamed(rows, "Final Rev. Buf.").registers;
    EXPECT_GT(bufs, total / 2);
}

TEST(AreaModel, SoftPhyOverheadAroundTenPercent)
{
    // Conclusion: "around 10% increase in the size of a transceiver".
    DecoderAreaParams p;
    double sova_pct = softPhyOverheadPct("sova", p);
    EXPECT_GT(sova_pct, 5.0);
    EXPECT_LT(sova_pct, 20.0);
}

TEST(AreaModel, DecoderTotalDispatch)
{
    DecoderAreaParams p;
    EXPECT_EQ(decoderTotal("viterbi", p).luts,
              viterbiAreaReport(p)[0].area.luts);
    EXPECT_EQ(decoderTotal("bcjr-logmap", p).luts,
              bcjrAreaReport(p)[0].area.luts);
}

TEST(Link, TransferTimeAndEffectiveBandwidth)
{
    LinkModel::Params prm;
    prm.bandwidthMBps = 700.0;
    prm.perTransferOverheadUs = 20.0;
    LinkModel link(prm);
    // 700 MB/s == 700 bytes/us.
    EXPECT_NEAR(link.transferUs(7000), 20.0 + 10.0, 1e-9);
    // Tiny batches are overhead-dominated.
    EXPECT_LT(link.effectiveBandwidthMBps(64), 5.0);
    // Large batches approach line bandwidth.
    EXPECT_GT(link.effectiveBandwidthMBps(4 << 20), 600.0);
}

TEST(Link, StatsAccumulate)
{
    LinkModel link;
    link.record(1000);
    link.record(3000);
    EXPECT_EQ(link.totalBytes(), 4000u);
    EXPECT_EQ(link.totalTransfers(), 2u);
    EXPECT_GT(link.busyUs(), 0.0);
}

TEST(CosimModel, PaperConfigurationFractionsAndLinkUse)
{
    // With the paper's parameters the software channel is the
    // bottleneck at ~1/3 of line rate and uses ~55 MB/s of link.
    CosimModel m; // defaults: 35 MHz FPGA, 6.9 Msps channel
    double frac = m.lineRateFraction();
    EXPECT_GT(frac, 0.30);
    EXPECT_LT(frac, 0.42);
    EXPECT_NEAR(m.linkUtilizationMBps(), 55.0, 6.0);

    // Figure 2 check at the extremes of the rate table.
    EXPECT_NEAR(m.simSpeedMbps(phy::rateTable(0)), 2.03, 0.5);
    EXPECT_NEAR(m.simSpeedMbps(phy::rateTable(7)), 20.0, 4.0);
}

TEST(CosimModel, FasterChannelShiftsBottleneck)
{
    CosimModel m;
    m.swChannelMsps = 100.0; // channel no longer limits
    // Now the 35 MHz FPGA pipeline caps at 1.75x line rate.
    EXPECT_NEAR(m.lineRateFraction(), 1.75, 1e-9);
}

TEST(CosimDriver, DecoupledBeatsLockstepByAboutTenX)
{
    // Section 2: LI batching "increase[s] our throughput by
    // approximately one order of magnitude".
    sim::TestbenchConfig tb;
    tb.rate = 4;
    tb.rx.decoder = "viterbi";
    tb.channelCfg = li::Config::fromString("snr_db=30,seed=3");

    CosimDriver::Params li_params;
    li_params.batchSamples = 4096;
    li_params.decoupled = true;

    CosimDriver::Params lockstep = li_params;
    lockstep.batchSamples = 80; // one OFDM symbol per exchange
    lockstep.decoupled = false;

    CosimDriver fast(tb, li_params);
    CosimDriver slow(tb, lockstep);
    auto a = fast.run(1704, 6);
    auto b = slow.run(1704, 6);
    ASSERT_GT(a.simSpeedMbps(), 0.0);
    ASSERT_GT(b.simSpeedMbps(), 0.0);
    double speedup = a.simSpeedMbps() / b.simSpeedMbps();
    EXPECT_GT(speedup, 5.0);
    EXPECT_LT(speedup, 40.0);
}

TEST(CosimDriver, SampleAccounting)
{
    sim::TestbenchConfig tb;
    tb.rate = 0; // BPSK 1/2
    tb.rx.decoder = "viterbi";
    tb.channelCfg = li::Config::fromString("snr_db=30,seed=3");
    CosimDriver::Params p;
    CosimDriver driver(tb, p);
    auto stats = driver.run(100, 2);
    // 100 bits + 6 tail at 24 bits/symbol -> 5 symbols -> 400
    // samples per packet.
    EXPECT_EQ(stats.samples, 800u);
    EXPECT_EQ(stats.payloadBits, 200u);
    EXPECT_GT(stats.wallUs, 0.0);
}
