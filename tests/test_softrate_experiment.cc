/**
 * @file
 * Experiment-level regression of the Figure 7 claims at reduced
 * scale: SoftRate driven by calibrated per-rate SoftPHY estimates
 * over the 20 Hz fading / 10 dB AWGN channel must (a) track the
 * oracle within one rate step for most packets, (b) overselect
 * rarely, and (c) underselect more with SOVA than with BCJR.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mac/oracle.hh"
#include "mac/softrate.hh"
#include "softphy/softphy.hh"

using namespace wilis;

namespace {

struct RunStats {
    mac::SelectionStats sel;
    std::uint64_t within_one = 0;
    std::uint64_t judged = 0;

    double
    withinOnePct() const
    {
        return judged ? 100.0 * static_cast<double>(within_one) /
                            static_cast<double>(judged)
                      : 0.0;
    }
};

RunStats
runExperiment(const char *decoder, std::uint64_t packets)
{
    softphy::CalibrationSpec spec;
    spec.rx.decoder = decoder;
    spec.payloadBits = 1704;
    spec.packets = 80;
    spec.threads = 0;
    softphy::BerEstimator est = calibrateRateEstimator(spec);

    sim::TestbenchConfig base;
    base.rx = spec.rx;
    base.channel = "rayleigh";
    base.channelCfg = li::Config::fromString(
        "snr_db=10,doppler_hz=20,seed=64222,packet_interval_us=200,"
        "common_noise=true,block_fading=true");

    mac::RateOracle oracle(base);
    mac::SoftRateMac::Config mc;
    mc.pberLo = 1e-6;
    mc.pberHi = 1e-4;
    mac::SoftRateMac softrate(mc);

    RunStats out;
    for (std::uint64_t p = 0; p < packets; ++p) {
        phy::RateIndex chosen = softrate.currentRate();
        sim::PacketResult res = oracle.runAtRate(chosen, 1704, p);
        softrate.onFeedback(
            est.packetBerForRate(chosen, res.rx.soft));
        int optimal = oracle.optimalRate(1704, p);
        if (optimal < 0)
            continue;
        out.sel.record(mac::classifySelection(chosen, optimal));
        out.within_one += std::abs(chosen - optimal) <= 1;
        ++out.judged;
    }
    return out;
}

} // namespace

TEST(SoftRateExperiment, Figure7Relations)
{
    const std::uint64_t packets = 150;
    RunStats bcjr = runExperiment("bcjr", packets);
    RunStats sova = runExperiment("sova", packets);

    ASSERT_GT(bcjr.judged, 100u);
    ASSERT_GT(sova.judged, 100u);

    // Both decoders track the oracle.
    EXPECT_GT(bcjr.sel.accuratePct(), 30.0);
    EXPECT_GT(sova.sel.accuratePct(), 30.0);
    EXPECT_GT(bcjr.withinOnePct(), 75.0);
    EXPECT_GT(sova.withinOnePct(), 75.0);

    // Overselection is rare for both (paper: ~2%).
    EXPECT_LT(bcjr.sel.overPct(), 20.0);
    EXPECT_LT(sova.sel.overPct(), 20.0);

    // SOVA underselects more often than BCJR (paper: ~4% more);
    // allow slack for the reduced packet count.
    EXPECT_GT(sova.sel.underPct(), bcjr.sel.underPct() - 3.0);
}

TEST(SoftRateExperiment, PerRateTablesBeatPerModulationTables)
{
    // The per-rate refinement exists because per-modulation tables
    // under-credit punctured rates: BPSK 3/4 hints run ~half the
    // magnitude of BPSK 1/2 hints, so a shared table reports a
    // pessimistic PBER and the controller stalls below the optimal
    // rate (see BerEstimator docs and EXPERIMENTS.md).
    softphy::CalibrationSpec spec;
    spec.rx.decoder = "bcjr";
    spec.payloadBits = 1704;
    spec.packets = 80;
    spec.threads = 0;
    softphy::BerEstimator per_mod = calibrateEstimator(spec);
    softphy::BerEstimator per_rate = calibrateRateEstimator(spec);

    // A clean-channel packet at BPSK 3/4 (rate 1): the per-rate
    // estimate must show far more headroom than the per-modulation
    // one.
    sim::TestbenchConfig cfg;
    cfg.rate = 1;
    cfg.rx = spec.rx;
    cfg.channelCfg = li::Config::fromString("snr_db=12,seed=5");
    sim::Testbench tb(cfg);
    sim::PacketResult res = tb.runPacket(1704, 0);
    ASSERT_EQ(res.bitErrors, 0u);

    double mod_pber =
        per_mod.packetBer(phy::Modulation::BPSK, res.rx.soft);
    double rate_pber = per_rate.packetBerForRate(1, res.rx.soft);
    EXPECT_LT(rate_pber, mod_pber / 10.0)
        << "per-rate table should report much lower PBER on the "
           "punctured rate";
    EXPECT_LT(rate_pber, 1e-6)
        << "clean channel must show rate-up headroom";
}
