/**
 * @file
 * Channel model tests: AWGN statistics, replay determinism (the
 * SoftRate oracle requirement), thread-count invariance, and Rayleigh
 * fading statistics/time-correlation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hh"
#include "channel/fading.hh"
#include "common/stats.hh"

using namespace wilis;
using namespace wilis::channel;

TEST(Awgn, NoiseVarianceMatchesSnr)
{
    for (double snr_db : {0.0, 6.0, 10.0}) {
        AwgnChannel ch(snr_db, 42);
        SampleVec samples(200000, Sample(0.0, 0.0));
        ch.apply(samples, 0);

        RunningStats re, im;
        for (const auto &s : samples) {
            re.add(s.real());
            im.add(s.imag());
        }
        double n0 = std::pow(10.0, -snr_db / 10.0);
        EXPECT_NEAR(re.mean(), 0.0, 0.01) << snr_db;
        EXPECT_NEAR(im.mean(), 0.0, 0.01) << snr_db;
        EXPECT_NEAR(re.variance() + im.variance(), n0, 0.03 * n0)
            << snr_db;
        EXPECT_NEAR(ch.noiseVariance(), n0, 1e-12);
    }
}

TEST(Awgn, ReplayIsDeterministicPerPacket)
{
    AwgnChannel ch(10.0, 7);
    SampleVec a(5000, Sample(1.0, -1.0));
    SampleVec b(5000, Sample(1.0, -1.0));
    ch.apply(a, 3);
    ch.apply(b, 3);
    EXPECT_EQ(a, b);

    SampleVec c(5000, Sample(1.0, -1.0));
    ch.apply(c, 4);
    EXPECT_NE(a, c);
}

TEST(Awgn, ReplayOrderIndependent)
{
    // Applying packets in any order yields identical noise.
    AwgnChannel ch(10.0, 7);
    SampleVec p0_first(1000, Sample(0, 0));
    SampleVec p1_first(1000, Sample(0, 0));
    ch.apply(p0_first, 0);
    ch.apply(p1_first, 1);

    AwgnChannel ch2(10.0, 7);
    SampleVec p1_again(1000, Sample(0, 0));
    SampleVec p0_again(1000, Sample(0, 0));
    ch2.apply(p1_again, 1);
    ch2.apply(p0_again, 0);
    EXPECT_EQ(p0_first, p0_again);
    EXPECT_EQ(p1_first, p1_again);
}

TEST(Awgn, ThreadCountDoesNotChangeNoise)
{
    SampleVec one(8192, Sample(0, 0));
    SampleVec four(8192, Sample(0, 0));
    AwgnChannel ch1(8.0, 99, 1);
    AwgnChannel ch4(8.0, 99, 4);
    ch1.apply(one, 5);
    ch4.apply(four, 5);
    EXPECT_EQ(one, four);
}

TEST(Awgn, SnrKnobIsVariable)
{
    AwgnChannel ch(30.0, 1);
    SampleVec quiet(10000, Sample(0, 0));
    ch.apply(quiet, 0);
    ch.setSnrDb(0.0);
    SampleVec loud(10000, Sample(0, 0));
    ch.apply(loud, 0);

    double e_quiet = 0.0;
    double e_loud = 0.0;
    for (size_t i = 0; i < quiet.size(); ++i) {
        e_quiet += std::norm(quiet[i]);
        e_loud += std::norm(loud[i]);
    }
    EXPECT_GT(e_loud, 100.0 * e_quiet);
}

TEST(Rayleigh, UnitMeanPower)
{
    // Ensemble + time average over several oscillator-bank draws:
    // single realizations of a 16-oscillator Clarke model have a
    // per-draw power wobble, but the ensemble converges to 1.
    RunningStats pwr;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        RayleighChannel ch(100.0, 20.0, seed);
        for (std::uint64_t p = 0; p < 4000; ++p)
            pwr.add(std::norm(ch.gain(p, 0)));
    }
    EXPECT_NEAR(pwr.mean(), 1.0, 0.1);
}

TEST(Rayleigh, AmplitudeIsRayleighShaped)
{
    // For Rayleigh |h| with E|h|^2 = 1: P(|h|^2 < x) = 1 - e^-x.
    // Check the deep-fade probability P(|h|^2 < 0.1) ~ 9.5%.
    std::uint64_t deep = 0;
    std::uint64_t total = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        RayleighChannel ch(100.0, 20.0, seed);
        for (std::uint64_t p = 0; p < 4000; ++p) {
            deep += std::norm(ch.gain(p, 0)) < 0.1;
            ++total;
        }
    }
    double frac = static_cast<double>(deep) / static_cast<double>(total);
    EXPECT_NEAR(frac, 1.0 - std::exp(-0.1), 0.035);
}

TEST(Rayleigh, GainVariesAcrossPacketsButSlowlyWithinPacket)
{
    RayleighChannel ch(10.0, 20.0, 3);
    // Within a packet (~100 us at 20 Hz Doppler) the gain is nearly
    // constant; across 50 packets (100 ms) it decorrelates.
    Sample g0 = ch.gain(0, 0);
    Sample g_end = ch.gain(0, 20);
    EXPECT_LT(std::abs(g0 - g_end), 0.12 * (std::abs(g0) + 0.1));

    RunningStats diff;
    for (std::uint64_t p = 0; p < 200; ++p)
        diff.add(std::abs(ch.gain(p, 0) - ch.gain(p + 50, 0)));
    EXPECT_GT(diff.mean(), 0.3);
}

TEST(Rayleigh, ApplyScalesAndAddsNoise)
{
    RayleighChannel ch(60.0, 20.0, 8); // very low noise
    SampleVec samples(80, Sample(1.0, 0.0));
    ch.apply(samples, 17);
    Sample g = ch.gain(17, 0);
    for (const auto &s : samples)
        EXPECT_LT(std::abs(s - g), 0.05);
}

TEST(Rayleigh, DeterministicPerSeed)
{
    RayleighChannel a(10.0, 20.0, 5);
    RayleighChannel b(10.0, 20.0, 5);
    RayleighChannel c(10.0, 20.0, 6);
    EXPECT_EQ(a.gain(3, 1), b.gain(3, 1));
    EXPECT_NE(a.gain(3, 1), c.gain(3, 1));
}

TEST(Awgn, CommonNoiseModeRepeatsAcrossPackets)
{
    // The paper's pseudo-random noise model: with common_noise the
    // same noise sequence hits every packet, so packet success
    // becomes a deterministic function of the fading level.
    li::Config cfg = li::Config::fromString(
        "snr_db=10,seed=7,common_noise=true");
    AwgnChannel ch(cfg);
    SampleVec a(1000, Sample(0, 0));
    SampleVec b(1000, Sample(0, 0));
    ch.apply(a, 3);
    ch.apply(b, 8);
    EXPECT_EQ(a, b);

    // Without the flag, packets see independent noise.
    AwgnChannel indep(10.0, 7);
    SampleVec c(1000, Sample(0, 0));
    SampleVec d(1000, Sample(0, 0));
    indep.apply(c, 3);
    indep.apply(d, 8);
    EXPECT_NE(c, d);
}

TEST(Rayleigh, BlockFadingHoldsGainWithinPacket)
{
    li::Config cfg = li::Config::fromString(
        "snr_db=10,doppler_hz=20,seed=3,block_fading=true");
    RayleighChannel ch(cfg);
    EXPECT_EQ(ch.gain(5, 0), ch.gain(5, 30));
    EXPECT_NE(ch.gain(5, 0), ch.gain(50, 0));

    li::Config smooth = li::Config::fromString(
        "snr_db=10,doppler_hz=20,seed=3");
    RayleighChannel ch2(smooth);
    EXPECT_NE(ch2.gain(5, 0), ch2.gain(5, 30));
}

TEST(ChannelRegistry, CreatesByName)
{
    li::Config cfg;
    cfg.set("snr_db", "12");
    auto awgn = makeChannel("awgn", cfg);
    EXPECT_EQ(awgn->name(), "awgn");
    EXPECT_NEAR(awgn->noiseVariance(), std::pow(10.0, -1.2), 1e-9);

    auto ray = makeChannel("rayleigh", cfg);
    EXPECT_EQ(ray->name(), "rayleigh");
}
