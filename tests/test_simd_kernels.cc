/**
 * @file
 * Kernel-dispatch test suite: every SIMD backend available on the
 * host must be BIT-EXACT with the scalar reference on randomized
 * inputs for each kernel in the table (demapper LLRs, forward /
 * backward ACS, the BCJR decision unit, metric normalization,
 * channel complex scale and noise injection, and the prototype i16
 * saturating ACS), and forcing the scalar backend must reproduce the
 * full-pipeline results of the widest backend on a rate x channel
 * grid -- the property that makes test_bitexact_grid's pins
 * backend-independent.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/cpu_features.hh"
#include "common/kernels.hh"
#include "common/random.hh"
#include "decode/trellis_kernels.hh"
#include "phy/demapper.hh"
#include "phy/modulation.hh"
#include "sim/link_fidelity.hh"
#include "sim/multicell_detail.hh"
#include "sim/scenario.hh"
#include "sim/testbench.hh"

using namespace wilis;
using kernels::Backend;
using kernels::Ops;

namespace {

const Ops &
tableOf(Backend b)
{
    EXPECT_TRUE(kernels::setBackend(b));
    return kernels::ops();
}

/** Backends to verify against scalar (may be just {scalar}). */
std::vector<Backend>
vectorBackends()
{
    std::vector<Backend> v;
    for (Backend b : kernels::availableBackends()) {
        if (b != Backend::Scalar)
            v.push_back(b);
    }
    return v;
}

std::vector<std::int32_t>
randomMetrics(SplitMix64 &rng, size_t n, std::int32_t spread)
{
    std::vector<std::int32_t> v(n);
    for (auto &x : v) {
        x = static_cast<std::int32_t>(rng.nextBelow(
                static_cast<std::uint64_t>(2 * spread))) -
            spread;
        // Sprinkle floor states like a real PMU sweep has.
        if (rng.nextBelow(8) == 0)
            x = decode::kMetricFloor;
    }
    return v;
}

} // namespace

class SimdKernelTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        // Leave the process-wide table as the widest backend so test
        // order cannot leak a forced scalar table into other suites.
        kernels::setBackend(kernels::availableBackends().back());
    }
};

TEST_F(SimdKernelTest, RegistryReportsHostBackends)
{
    auto avail = kernels::availableBackends();
    ASSERT_FALSE(avail.empty());
    EXPECT_EQ(avail.front(), Backend::Scalar);
    for (Backend b : avail)
        EXPECT_TRUE(kernels::backendSupported(b));
    // Names round-trip through the parser.
    for (Backend b : avail) {
        Backend parsed;
        ASSERT_TRUE(kernels::parseBackend(kernels::backendName(b),
                                          &parsed));
        EXPECT_EQ(parsed, b);
    }
    Backend ignored;
    EXPECT_FALSE(kernels::parseBackend("auto", &ignored));
    if (cpu::hasAvx2()) {
        EXPECT_EQ(avail.back(), Backend::Avx2);
    }
}

TEST_F(SimdKernelTest, AcsForwardMatchesScalar)
{
    const auto &tv = decode::TrellisTables::view();
    SplitMix64 rng(0xAC51);
    for (Backend b : vectorBackends()) {
        const Ops &vec = tableOf(b);
        const Ops &ref = tableOf(Backend::Scalar);
        for (int round = 0; round < 200; ++round) {
            auto pm = randomMetrics(rng, decode::kStates, 1 << 20);
            std::int32_t bm[4];
            for (auto &x : bm)
                x = static_cast<std::int32_t>(rng.nextBelow(4096)) -
                    2048;

            std::int32_t out_ref[decode::kStates];
            std::int32_t out_vec[decode::kStates];
            std::int32_t d_ref[decode::kStates];
            std::int32_t d_vec[decode::kStates];
            std::uint64_t ch_ref = 0, ch_vec = 0;
            bool want_delta = (round % 2) == 0;
            ref.acsForward(tv, pm.data(), bm, out_ref, &ch_ref,
                           want_delta ? d_ref : nullptr);
            vec.acsForward(tv, pm.data(), bm, out_vec, &ch_vec,
                           want_delta ? d_vec : nullptr);

            ASSERT_EQ(ch_ref, ch_vec)
                << kernels::backendName(b) << " round " << round;
            ASSERT_EQ(0, std::memcmp(out_ref, out_vec,
                                     sizeof(out_ref)))
                << kernels::backendName(b) << " round " << round;
            if (want_delta) {
                ASSERT_EQ(0,
                          std::memcmp(d_ref, d_vec, sizeof(d_ref)))
                    << kernels::backendName(b) << " round " << round;
            }
        }
    }
}

TEST_F(SimdKernelTest, AcsBackwardAndBcjrDecisionMatchScalar)
{
    const auto &tv = decode::TrellisTables::view();
    SplitMix64 rng(0xBC38);
    for (Backend b : vectorBackends()) {
        const Ops &vec = tableOf(b);
        const Ops &ref = tableOf(Backend::Scalar);
        for (int round = 0; round < 200; ++round) {
            auto beta = randomMetrics(rng, decode::kStates, 1 << 20);
            auto alpha = randomMetrics(rng, decode::kStates, 1 << 20);
            std::int32_t bm[4];
            for (auto &x : bm)
                x = static_cast<std::int32_t>(rng.nextBelow(4096)) -
                    2048;

            std::int32_t out_ref[decode::kStates];
            std::int32_t out_vec[decode::kStates];
            ref.acsBackward(tv, beta.data(), bm, out_ref);
            vec.acsBackward(tv, beta.data(), bm, out_vec);
            ASSERT_EQ(0, std::memcmp(out_ref, out_vec,
                                     sizeof(out_ref)))
                << kernels::backendName(b) << " round " << round;

            std::int32_t b0r = decode::kMetricFloor;
            std::int32_t b1r = decode::kMetricFloor;
            std::int32_t b0v = decode::kMetricFloor;
            std::int32_t b1v = decode::kMetricFloor;
            ref.bcjrDecision(tv, alpha.data(), bm, beta.data(), &b0r,
                             &b1r);
            vec.bcjrDecision(tv, alpha.data(), bm, beta.data(), &b0v,
                             &b1v);
            ASSERT_EQ(b0r, b0v) << kernels::backendName(b);
            ASSERT_EQ(b1r, b1v) << kernels::backendName(b);
        }
    }
}

TEST_F(SimdKernelTest, NormalizeAndBestStateMatchScalar)
{
    SplitMix64 rng(0x4049);
    for (Backend b : vectorBackends()) {
        const Ops &vec = tableOf(b);
        const Ops &ref = tableOf(Backend::Scalar);
        for (int round = 0; round < 200; ++round) {
            auto pm = randomMetrics(rng, decode::kStates, 1 << 24);
            auto pm_vec = pm;
            ref.normalizeMetrics(pm.data(), decode::kStates,
                                 decode::kMetricFloor / 2,
                                 decode::kMetricFloor);
            vec.normalizeMetrics(pm_vec.data(), decode::kStates,
                                 decode::kMetricFloor / 2,
                                 decode::kMetricFloor);
            ASSERT_EQ(pm, pm_vec)
                << kernels::backendName(b) << " round " << round;
            ASSERT_EQ(ref.bestState(pm.data(), decode::kStates),
                      vec.bestState(pm.data(), decode::kStates));
        }
        // Tie-breaking: first index of the maximum wins.
        std::vector<std::int32_t> ties(decode::kStates, 7);
        EXPECT_EQ(0, vec.bestState(ties.data(), decode::kStates));
        ties[5] = 9;
        ties[40] = 9;
        EXPECT_EQ(5, vec.bestState(ties.data(), decode::kStates));
    }
}

TEST_F(SimdKernelTest, AcsForwardI16MatchesScalar)
{
    const auto &tv = decode::TrellisTables::view();
    SplitMix64 rng(0x116A);
    for (Backend b : vectorBackends()) {
        const Ops &vec = tableOf(b);
        const Ops &ref = tableOf(Backend::Scalar);
        for (int round = 0; round < 200; ++round) {
            std::int16_t pm[decode::kStates];
            for (auto &x : pm)
                x = static_cast<std::int16_t>(rng.next());
            std::int16_t bm[4];
            for (auto &x : bm)
                x = static_cast<std::int16_t>(rng.nextBelow(512)) -
                    256;
            std::int16_t out_ref[decode::kStates];
            std::int16_t out_vec[decode::kStates];
            std::uint64_t ch_ref = 0, ch_vec = 0;
            ref.acsForwardI16(tv, pm, bm, out_ref, &ch_ref);
            vec.acsForwardI16(tv, pm, bm, out_vec, &ch_vec);
            ASSERT_EQ(ch_ref, ch_vec)
                << kernels::backendName(b) << " round " << round;
            ASSERT_EQ(0, std::memcmp(out_ref, out_vec,
                                     sizeof(out_ref)))
                << kernels::backendName(b) << " round " << round;
        }
    }
}

TEST_F(SimdKernelTest, DemapBatchMatchesScalarAndPerSymbolDemap)
{
    SplitMix64 rng(0xDE3A9);
    for (int mod = 0; mod < 4; ++mod) {
        auto m = static_cast<phy::Modulation>(mod);
        phy::Demapper::Config dcfg;
        dcfg.softWidth = 6;
        phy::Demapper dm(m, dcfg);
        const int bits = phy::bitsPerSubcarrier(m);

        // Mixed magnitudes: in-range, saturating, and tiny.
        const size_t n = 131; // deliberately not lane-aligned
        SampleVec ys(n);
        std::vector<double> ws(n);
        for (size_t i = 0; i < n; ++i) {
            double mag = (i % 3 == 0) ? 8.0 : 1.0;
            ys[i] = Sample((rng.nextDouble() * 2.0 - 1.0) * mag,
                           (rng.nextDouble() * 2.0 - 1.0) * mag);
            ws[i] = 0.25 + rng.nextDouble();
        }

        const double *weight_sets[] = {nullptr, ws.data()};
        for (const double *weights : weight_sets) {
            // Reference: the per-symbol scalar demap the receiver
            // used before batching.
            SoftVec ref(n * static_cast<size_t>(bits));
            kernels::setBackend(Backend::Scalar);
            for (size_t i = 0; i < n; ++i) {
                dm.demap(ys[i],
                         &ref[i * static_cast<size_t>(bits)],
                         weights ? weights[i] : 1.0);
            }
            for (Backend b : kernels::availableBackends()) {
                kernels::setBackend(b);
                SoftVec got(n * static_cast<size_t>(bits), -999);
                dm.demapBatch(ys.data(), weights, n, got.data());
                ASSERT_EQ(ref, got)
                    << "mod " << mod << " backend "
                    << kernels::backendName(b)
                    << (weights ? " weighted" : " unweighted");
            }
        }
    }
}

TEST_F(SimdKernelTest, ChannelKernelsMatchScalar)
{
    SplitMix64 rng(0xC4A2);
    const size_t n = 203; // odd tail on purpose
    SampleVec base(n);
    std::vector<double> gauss(2 * n);
    for (auto &s : base)
        s = Sample(rng.nextDouble() * 2.0 - 1.0,
                   rng.nextDouble() * 2.0 - 1.0);
    for (auto &g : gauss)
        g = rng.nextDouble() * 4.0 - 2.0;
    const Sample h(0.7310529, -0.3912047);
    const double sigma = 0.1638;

    const Ops &ref = tableOf(Backend::Scalar);
    SampleVec scaled_ref = base;
    ref.scaleComplex(scaled_ref.data(), n, h);
    SampleVec noisy_ref = base;
    ref.axpyNoise(noisy_ref.data(), n, sigma, gauss.data());

    // The scalar kernel must itself match the expression it
    // replaced: samples[i] *= h via std::complex.
    SampleVec direct = base;
    for (auto &s : direct)
        s *= h;
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(direct[i], scaled_ref[i]) << "sample " << i;

    for (Backend b : vectorBackends()) {
        const Ops &vec = tableOf(b);
        SampleVec scaled = base;
        vec.scaleComplex(scaled.data(), n, h);
        SampleVec noisy = base;
        vec.axpyNoise(noisy.data(), n, sigma, gauss.data());
        ASSERT_EQ(0, std::memcmp(scaled.data(), scaled_ref.data(),
                                 n * sizeof(Sample)))
            << kernels::backendName(b);
        ASSERT_EQ(0, std::memcmp(noisy.data(), noisy_ref.data(),
                                 n * sizeof(Sample)))
            << kernels::backendName(b);
    }
}

TEST_F(SimdKernelTest, AxpyF32MatchesScalar)
{
    SplitMix64 rng(0xF32A);
    const size_t n = 517;
    std::vector<float> x(n), y0(n);
    for (size_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(rng.nextDouble() * 2.0 - 1.0);
        y0[i] = static_cast<float>(rng.nextDouble() * 2.0 - 1.0);
    }
    const float a = 0.33719f;
    const Ops &ref = tableOf(Backend::Scalar);
    std::vector<float> want = y0;
    ref.axpyF32(want.data(), x.data(), n, a);
    for (Backend b : vectorBackends()) {
        const Ops &vec = tableOf(b);
        std::vector<float> got = y0;
        vec.axpyF32(got.data(), x.data(), n, a);
        ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                 n * sizeof(float)))
            << kernels::backendName(b);
    }
}

// ------------------------- SoA analytic-engine kernels (PR 6) ----

TEST_F(SimdKernelTest, RngU01KeyedMatchesCounterRngAndScalar)
{
    SplitMix64 rng(0x9E37);
    const size_t n = 517; // odd tail on purpose
    std::vector<std::uint64_t> keys(n);
    for (auto &k : keys)
        k = rng.next();
    for (std::uint64_t counter :
         {std::uint64_t(0), std::uint64_t(1), std::uint64_t(12345),
          std::uint64_t(0x7FFFFFFFFFFFull)}) {
        const Ops &ref = tableOf(Backend::Scalar);
        std::vector<double> want(n, -1.0);
        ref.rngU01Keyed(keys.data(), n, counter, want.data());
        // The scalar kernel must itself be the CounterRng
        // expression it batches.
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(CounterRng(keys[i]).doubleAt(counter),
                      want[i])
                << "lane " << i << " counter " << counter;
        for (Backend b : vectorBackends()) {
            const Ops &vec = tableOf(b);
            std::vector<double> got(n, -2.0);
            vec.rngU01Keyed(keys.data(), n, counter, got.data());
            ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                     n * sizeof(double)))
                << kernels::backendName(b) << " counter "
                << counter;
        }
    }
}

TEST_F(SimdKernelTest, SinrAccumBatchMatchesScalarReference)
{
    SplitMix64 rng(0x51A8);
    const int cells = 13;
    const size_t n = 101; // odd tail on purpose
    std::vector<std::vector<double>> gains(
        n, std::vector<double>(static_cast<size_t>(cells)));
    std::vector<const double *> rows(n);
    std::vector<std::int32_t> serving(n);
    std::vector<std::uint64_t> fade_keys(n);
    std::vector<std::uint8_t> active(static_cast<size_t>(cells));
    std::vector<double> sig(n);
    for (auto &a : active)
        a = rng.nextBelow(4) != 0 ? 1 : 0; // mostly-on, some idle
    for (size_t i = 0; i < n; ++i) {
        for (auto &g : gains[i])
            g = rng.nextDouble() * 1e-3;
        rows[i] = gains[i].data();
        serving[i] =
            static_cast<std::int32_t>(rng.nextBelow(cells));
        fade_keys[i] = rng.next();
        // Sprinkle zero-signal entries: they must come out as
        // exactly the named sentinel, not -inf.
        sig[i] = (i % 17 == 0) ? 0.0 : rng.nextDouble() * 50.0;
    }

    for (std::uint64_t t :
         {std::uint64_t(0), std::uint64_t(7),
          std::uint64_t(91234)}) {
        // Reference: the per-user engine's scalar expression,
        // written out longhand.
        std::vector<double> want(n);
        for (size_t i = 0; i < n; ++i) {
            const CounterRng stream(fade_keys[i]);
            double interference = 0.0;
            for (int c2 = 0; c2 < cells; ++c2) {
                if (c2 == serving[i] ||
                    !active[static_cast<size_t>(c2)])
                    continue;
                interference +=
                    gains[i][static_cast<size_t>(c2)] *
                    sim::detail::interferenceFade(
                        stream,
                        t * static_cast<std::uint64_t>(cells) +
                            static_cast<std::uint64_t>(c2));
            }
            const double lin = sig[i] / (1.0 + interference);
            want[i] = lin > 0.0 ? 10.0 * std::log10(lin)
                                : sim::kZeroSinrDb;
        }
        for (Backend b : kernels::availableBackends()) {
            const Ops &ops = tableOf(b);
            std::vector<double> got(n, -1.0);
            ops.sinrAccumBatch(rows.data(), serving.data(),
                               fade_keys.data(), active.data(),
                               cells, t, sig.data(), n,
                               sim::kZeroSinrDb, got.data());
            ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                     n * sizeof(double)))
                << kernels::backendName(b) << " t " << t;
            for (size_t i = 0; i < n; i += 17)
                ASSERT_EQ(sim::kZeroSinrDb, got[i])
                    << "zero-signal entry " << i << " backend "
                    << kernels::backendName(b);
        }
    }
}

TEST_F(SimdKernelTest, PerDrawBatchMatchesScalarAcrossBackends)
{
    // A synthetic flattened table: the cross-backend contract does
    // not care where the numbers came from, only that every lane
    // interpolates and draws bit-identically.
    SplitMix64 rng(0x9E4D);
    const int bins = 9;
    kernels::PerTableView tv;
    std::vector<double> per(
        static_cast<size_t>(phy::kNumRates * bins));
    std::vector<double> log_ok(per.size()), log_bad(per.size());
    for (size_t i = 0; i < per.size(); ++i) {
        per[i] = rng.nextDouble();
        log_ok[i] = -12.0 * rng.nextDouble() - 0.5;
        log_bad[i] = -4.0 * rng.nextDouble() - 0.1;
    }
    tv.per = per.data();
    tv.logPberOk = log_ok.data();
    tv.logPberBad = log_bad.data();
    tv.numBins = bins;
    tv.snrLoDb = -4.0;
    tv.snrStepDb = 2.5;

    const size_t n = 73; // odd tail on purpose
    std::vector<std::int32_t> rates(n);
    std::vector<double> snr(n);
    std::vector<std::uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
        rates[i] =
            static_cast<std::int32_t>(rng.nextBelow(phy::kNumRates));
        // In-range, below-range and above-range SNRs so both edge
        // clamps and the interior interpolation are exercised.
        snr[i] = -10.0 + rng.nextDouble() * 40.0;
        keys[i] = rng.next();
    }
    for (std::uint64_t t :
         {std::uint64_t(0), std::uint64_t(5151)}) {
        const Ops &ref = tableOf(Backend::Scalar);
        std::vector<std::uint8_t> ok_ref(n, 9);
        std::vector<double> pber_ref(n, -1.0);
        ref.perDrawBatch(tv, rates.data(), snr.data(), keys.data(),
                         t, n, ok_ref.data(), pber_ref.data());
        for (Backend b : vectorBackends()) {
            const Ops &vec = tableOf(b);
            std::vector<std::uint8_t> ok(n, 7);
            std::vector<double> pber(n, -2.0);
            vec.perDrawBatch(tv, rates.data(), snr.data(),
                             keys.data(), t, n, ok.data(),
                             pber.data());
            ASSERT_EQ(ok_ref, ok)
                << kernels::backendName(b) << " t " << t;
            ASSERT_EQ(0, std::memcmp(pber_ref.data(), pber.data(),
                                     n * sizeof(double)))
                << kernels::backendName(b) << " t " << t;
        }
    }
}

TEST_F(SimdKernelTest, PfDecayMatchesScalarReference)
{
    SplitMix64 rng(0xF0EC);
    const size_t n = 37; // odd tail on purpose
    const double a = 1.0 / 48.0;
    const double served_bits = 8192.0;
    std::vector<double> base(n);
    for (auto &x : base)
        x = rng.nextDouble() * 1e5 + 1.0;
    for (std::int32_t granted :
         {std::int32_t(-1), std::int32_t(0), std::int32_t(17),
          static_cast<std::int32_t>(n - 1)}) {
        // Reference: the loop CellScheduler::update() used before
        // batching.
        std::vector<double> want = base;
        for (size_t i = 0; i < n; ++i) {
            const double inst =
                static_cast<std::int32_t>(i) == granted
                    ? served_bits
                    : 0.0;
            want[i] = (1.0 - a) * want[i] + a * inst;
        }
        for (Backend b : kernels::availableBackends()) {
            const Ops &ops = tableOf(b);
            std::vector<double> got = base;
            ops.pfDecay(got.data(), n, a, granted, served_bits);
            ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                     n * sizeof(double)))
                << kernels::backendName(b) << " granted "
                << granted;
        }
    }
}

/**
 * Forcing the scalar backend reproduces the full-pipeline frame
 * results of the widest backend over a rate x channel grid -- the
 * scenario-level statement of the bit-exactness policy, and what
 * keeps the pins in test_bitexact_grid backend-independent. Exercises
 * all three decoders so Viterbi, SOVA and BCJR kernels are all
 * covered end to end.
 */
TEST_F(SimdKernelTest, ScalarBackendReproducesGridResults)
{
    struct Cell {
        int rate;
        const char *channel;
        const char *decoder;
    };
    const Cell cells[] = {
        {0, "awgn", "viterbi"}, {3, "awgn", "sova"},
        {5, "awgn", "bcjr"},    {1, "rayleigh", "viterbi"},
        {4, "rayleigh", "bcjr"}, {6, "ar1", "sova"},
    };
    for (const Cell &cell : cells) {
        sim::ScenarioSpec spec;
        spec.rate = cell.rate;
        spec.channel = cell.channel;
        spec.channelCfg = li::Config::fromString(
            "snr_db=9,doppler_hz=25,seed=77");
        spec.rx.decoder = cell.decoder;
        spec.payloadBits = 300;

        struct Run {
            BitVec bits;
            std::vector<SoftDecision> soft;
            std::uint64_t errors = 0;
        };
        auto run_with = [&](Backend backend) {
            sim::Testbench tb(spec);
            // Select the table directly rather than through the
            // spec policy: applyPolicy defers to
            // WILIS_KERNEL_BACKEND, and CI runs this suite under a
            // forced env backend -- the comparison must still be
            // scalar vs widest, not current vs current.
            EXPECT_TRUE(kernels::setBackend(backend));
            Run r;
            for (std::uint64_t p = 0; p < 3; ++p) {
                sim::FrameResult fr =
                    tb.runFrame(spec.payloadBits, p);
                r.bits.insert(r.bits.end(), fr.rx.payload.begin(),
                              fr.rx.payload.end());
                r.soft.insert(r.soft.end(), fr.rx.soft.begin(),
                              fr.rx.soft.end());
                r.errors += fr.bitErrors;
            }
            return r;
        };

        Run scalar = run_with(Backend::Scalar);
        Run widest = run_with(kernels::availableBackends().back());
        ASSERT_EQ(scalar.bits, widest.bits)
            << cell.rate << "/" << cell.channel << "/"
            << cell.decoder;
        ASSERT_EQ(scalar.errors, widest.errors);
        ASSERT_EQ(scalar.soft.size(), widest.soft.size());
        for (size_t i = 0; i < scalar.soft.size(); ++i) {
            ASSERT_EQ(scalar.soft[i].bit, widest.soft[i].bit);
            ASSERT_EQ(scalar.soft[i].llr, widest.soft[i].llr)
                << "hint " << i;
        }
    }
}

TEST_F(SimdKernelTest, KernelPolicyRoundTripsThroughConfig)
{
    sim::ScenarioSpec spec;
    spec.kernel.backend = "scalar";
    li::Config cfg = spec.toConfig();
    EXPECT_EQ("scalar", cfg.getString("kernel_backend"));
    sim::ScenarioSpec back = sim::ScenarioSpec::fromConfig(cfg);
    EXPECT_EQ("scalar", back.kernel.backend);

    // NetworkSpec forwards the shorthand to its link template.
    sim::NetworkSpec net;
    net.applyConfig(li::Config::fromString("kernel_backend=scalar"));
    EXPECT_EQ("scalar", net.link.kernel.backend);
    sim::NetworkSpec round =
        sim::NetworkSpec::fromConfig(net.toConfig());
    EXPECT_EQ("scalar", round.link.kernel.backend);
}
