/**
 * @file
 * Latency-insensitive framework tests: FIFO handshake semantics,
 * multi-clock scheduling, automatic sync-FIFO insertion, plug-n-play
 * registry, config parsing, and the central LI property -- pipeline
 * results are invariant under FIFO capacities and clock assignment.
 */

#include <gtest/gtest.h>

#include "li/config.hh"
#include "li/fifo.hh"
#include "li/registry.hh"
#include "li/scheduler.hh"
#include "sim/li_pipeline.hh"

using namespace wilis;
using namespace wilis::li;
using namespace wilis::sim;

TEST(Fifo, BasicHandshake)
{
    Fifo<int> f("f", 2);
    EXPECT_TRUE(f.canEnq());
    EXPECT_FALSE(f.canDeq());
    f.enq(1);
    f.enq(2);
    EXPECT_FALSE(f.canEnq());
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.first(), 1);
    EXPECT_EQ(f.deq(), 1);
    EXPECT_EQ(f.deq(), 2);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.enqCount(), 2u);
}

TEST(FifoDeath, OverflowAndUnderflowPanic)
{
    Fifo<int> f("f", 1);
    f.enq(1);
    EXPECT_DEATH(f.enq(2), "full");
    f.deq();
    EXPECT_DEATH(f.deq(), "empty");
}

TEST(Clock, PeriodAndEdges)
{
    ClockDomain d("clk", 35.0);
    EXPECT_EQ(d.periodPs(), 28571u); // 1e6/35 rounded
    EXPECT_EQ(d.cycles(), 0u);
    EXPECT_EQ(d.nextEdge(), d.periodPs());
    d.advance();
    EXPECT_EQ(d.cycles(), 1u);
}

TEST(Scheduler, MultiClockRatio)
{
    // 35 MHz and 60 MHz domains over ~10 us of simulated time: the
    // cycle counts must track the frequency ratio.
    Scheduler sched;
    ClockDomain *slow = sched.createDomain("baseband", 35.0);
    ClockDomain *fast = sched.createDomain("ber_unit", 60.0);
    for (int i = 0; i < 2000; ++i)
        sched.step();
    double ratio = static_cast<double>(fast->cycles()) /
                   static_cast<double>(slow->cycles());
    EXPECT_NEAR(ratio, 60.0 / 35.0, 0.01);
}

TEST(Scheduler, SyncFifoInsertedAcrossDomainsOnly)
{
    Scheduler sched;
    ClockDomain *a = sched.createDomain("a", 35.0);
    ClockDomain *b = sched.createDomain("b", 60.0);
    sched.connectFifo<int>("same", 2, a, a);
    EXPECT_EQ(sched.syncFifoCount(), 0);
    sched.connectFifo<int>("cross", 2, a, b);
    EXPECT_EQ(sched.syncFifoCount(), 1);
}

TEST(SyncFifo, ImposesCrossingLatency)
{
    Scheduler sched;
    ClockDomain *a = sched.createDomain("a", 100.0);
    ClockDomain *b = sched.createDomain("b", 100.0);
    auto *f = sched.connectFifo<int>("x", 4, a, b);
    f->enq(42);
    // Not visible immediately: two consumer cycles must pass.
    EXPECT_FALSE(f->canDeq());
    sched.step();
    EXPECT_FALSE(f->canDeq());
    sched.step();
    sched.step();
    EXPECT_TRUE(f->canDeq());
    EXPECT_EQ(f->deq(), 42);
}

TEST(Registry, PlugNPlayCreateAndList)
{
    struct Iface {
        virtual ~Iface() = default;
        virtual int id() const = 0;
    };
    struct ImplA : Iface {
        explicit ImplA(const Config &) {}
        int id() const override { return 1; }
    };
    struct ImplB : Iface {
        explicit ImplB(const Config &) {}
        int id() const override { return 2; }
    };

    Registry<Iface> reg;
    reg.add("a", [](const Config &c) -> std::unique_ptr<Iface> {
        return std::make_unique<ImplA>(c);
    });
    reg.add("b", [](const Config &c) -> std::unique_ptr<Iface> {
        return std::make_unique<ImplB>(c);
    });
    EXPECT_TRUE(reg.has("a"));
    EXPECT_FALSE(reg.has("c"));
    EXPECT_EQ(reg.create("a")->id(), 1);
    EXPECT_EQ(reg.create("b")->id(), 2);
    auto names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

TEST(Config, ParseStringAndTypes)
{
    Config cfg = Config::fromString(
        "snr_db=7.5, seed=42,name=bcjr,flag=true");
    EXPECT_DOUBLE_EQ(cfg.getDouble("snr_db", 0), 7.5);
    EXPECT_EQ(cfg.getInt("seed", 0), 42);
    EXPECT_EQ(cfg.getString("name"), "bcjr");
    EXPECT_TRUE(cfg.getBool("flag", false));
    EXPECT_EQ(cfg.getInt("missing", -7), -7);
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(LiPipeline, TokensArriveInOrderAndIntact)
{
    Scheduler sched;
    ClockDomain *clk = sched.createDomain("clk", 60.0);
    LiPipeline pipe = buildSovaPipeline(sched, clk, 8, 8);

    std::vector<LiToken> in(50);
    for (size_t i = 0; i < in.size(); ++i) {
        in[i].id = i;
        in[i].value = static_cast<std::int64_t>(i * 3);
    }
    pipe.source->feed(in);
    sched.runUntilIdle(16);

    const auto &out = pipe.sink->received();
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i].id, in[i].id);
        EXPECT_EQ(out[i].value, in[i].value);
    }
}

TEST(LiPipeline, ThroughputIsOneTokenPerCycleAfterFill)
{
    Scheduler sched;
    ClockDomain *clk = sched.createDomain("clk", 60.0);
    LiPipeline pipe = buildSovaPipeline(sched, clk, 16, 16);

    const int n = 200;
    std::vector<LiToken> in(static_cast<size_t>(n));
    pipe.source->feed(in);
    sched.runUntilIdle(16);
    ASSERT_EQ(pipe.sink->received().size(), static_cast<size_t>(n));
    // Total cycles ~ latency + n (streaming at 1/cycle).
    std::int64_t span = pipe.sink->firstArrivalCycle() +
                        static_cast<std::int64_t>(n) - 1;
    EXPECT_LE(static_cast<std::int64_t>(clk->cycles()), span + 32);
}

TEST(LiPipeline, ResultInvariantUnderFifoCapacityAndClocks)
{
    // The latency-insensitivity property (section 2): swap FIFO
    // sizes and clock frequencies; the output stream is bit-exact.
    auto run = [](double freq, int l, int k) {
        Scheduler sched;
        ClockDomain *clk = sched.createDomain("clk", freq);
        LiPipeline pipe = buildSovaPipeline(sched, clk, l, k);
        std::vector<LiToken> in(100);
        for (size_t i = 0; i < in.size(); ++i) {
            in[i].id = i;
            in[i].value = static_cast<std::int64_t>(7 * i + 1);
        }
        pipe.source->feed(in);
        sched.runUntilIdle(16);
        std::vector<std::int64_t> vals;
        for (const auto &t : pipe.sink->received())
            vals.push_back(t.value);
        return vals;
    };

    auto ref = run(60.0, 64, 64);
    EXPECT_EQ(run(35.0, 64, 64), ref);
    EXPECT_EQ(run(7.0, 64, 64), ref);
    EXPECT_EQ(run(60.0, 8, 32), ref);
}

TEST(LiPipeline, SovaLatencyMatchesFormula)
{
    for (auto [l, k] : {std::pair{64, 64}, {32, 32}, {16, 64}}) {
        Scheduler sched;
        ClockDomain *clk = sched.createDomain("clk", 60.0);
        LiPipeline pipe = buildSovaPipeline(sched, clk, l, k);
        EXPECT_EQ(measurePipelineLatency(sched, pipe, 200),
                  l + k + 12)
            << "l=" << l << " k=" << k;
    }
}

TEST(LiPipeline, BcjrLatencyMatchesFormula)
{
    for (int n : {64, 32, 16}) {
        Scheduler sched;
        ClockDomain *clk = sched.createDomain("clk", 60.0);
        LiPipeline pipe = buildBcjrPipeline(sched, clk, n);
        EXPECT_EQ(measurePipelineLatency(sched, pipe, 200), 2 * n + 7)
            << "n=" << n;
    }
}

TEST(LiPipeline, LatencyInMicrosecondsMeetsBudget)
{
    // 140 cycles at 60 MHz = 2.33 us; 135 cycles = 2.25 us; both
    // far below the 25 us 802.11a/g budget (sections 4.3.1/4.3.2).
    Scheduler sched;
    ClockDomain *clk = sched.createDomain("clk", 60.0);
    LiPipeline pipe = buildSovaPipeline(sched, clk, 64, 64);
    int cycles = measurePipelineLatency(sched, pipe, 200);
    double us = static_cast<double>(cycles) / clk->freqMhz();
    EXPECT_NEAR(us, 2.33, 0.05);
    EXPECT_LT(us, 25.0);
}

TEST(LiPipeline, CrossDomainPipelineStillCorrect)
{
    // Producer at 35 MHz feeding a consumer at 60 MHz through an
    // auto-inserted sync FIFO: data must cross intact and in order.
    Scheduler sched;
    ClockDomain *slow = sched.createDomain("slow", 35.0);
    ClockDomain *fast = sched.createDomain("fast", 60.0);

    auto *f_in = sched.connectFifo<LiToken>("in", 4, slow, slow);
    auto *f_x = sched.connectFifo<LiToken>("x", 4, slow, fast);
    EXPECT_EQ(sched.syncFifoCount(), 1);

    auto src = std::make_unique<SourceModule>("src", f_in);
    auto *src_p = src.get();
    sched.adopt(std::move(src), slow);
    sched.adopt(std::make_unique<DelayStageModule>("stage", f_in, f_x,
                                                   3),
                slow);
    auto sink = std::make_unique<SinkModule>("sink", f_x);
    auto *sink_p = sink.get();
    sched.adopt(std::move(sink), fast);

    std::vector<LiToken> in(64);
    for (size_t i = 0; i < in.size(); ++i) {
        in[i].id = i;
        in[i].value = static_cast<std::int64_t>(i);
    }
    src_p->feed(in);
    sched.runUntilIdle(16);

    ASSERT_EQ(sink_p->received().size(), in.size());
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(sink_p->received()[i].value,
                  static_cast<std::int64_t>(i));
}

TEST(SchedulerDeath, UnknownDomainPanics)
{
    Scheduler sched;
    ClockDomain other("other", 10.0);
    SourceModule m("m", nullptr);
    EXPECT_DEATH(sched.add(&m, &other), "not owned");
}
