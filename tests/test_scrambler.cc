/**
 * @file
 * Scrambler unit tests: the 802.11 PRBS properties, self-inverse
 * behaviour, and the standard pilot polarity sequence.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "phy/scrambler.hh"

using namespace wilis;
using namespace wilis::phy;

TEST(Scrambler, KnownPrbsPrefix)
{
    // First 16 output bits of the all-ones-seeded 802.11 scrambler
    // (clause 17.3.5.4): 0000 1110 1111 0010.
    const Bit expected[16] = {0, 0, 0, 0, 1, 1, 1, 0,
                              1, 1, 1, 1, 0, 0, 1, 0};
    Scrambler s(0x7F);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(s.nextPrbsBit(), expected[i]) << "bit " << i;
}

TEST(Scrambler, Period127)
{
    Scrambler s(0x7F);
    BitVec first(127);
    for (auto &b : first)
        b = s.nextPrbsBit();
    for (int rep = 0; rep < 3; ++rep) {
        for (int i = 0; i < 127; ++i)
            ASSERT_EQ(s.nextPrbsBit(), first[static_cast<size_t>(i)])
                << "rep " << rep << " bit " << i;
    }
}

TEST(Scrambler, MaximalLengthBalance)
{
    // An m-sequence of length 127 contains 64 ones and 63 zeros.
    Scrambler s(0x7F);
    int ones = 0;
    for (int i = 0; i < 127; ++i)
        ones += s.nextPrbsBit();
    EXPECT_EQ(ones, 64);
}

TEST(Scrambler, SelfInverse)
{
    SplitMix64 rng(42);
    BitVec data(1000);
    for (auto &b : data)
        b = rng.nextBit();

    for (std::uint8_t seed : {0x7F, 0x5D, 0x01, 0x2A}) {
        Scrambler a(seed);
        Scrambler b(seed);
        BitVec scrambled = a.process(data);
        BitVec recovered = b.process(scrambled);
        EXPECT_EQ(recovered, data) << "seed " << int(seed);
        EXPECT_NE(scrambled, data) << "seed " << int(seed);
    }
}

TEST(Scrambler, DifferentSeedsDiffer)
{
    BitVec zeros(64, 0);
    Scrambler a(0x7F);
    Scrambler b(0x5D);
    EXPECT_NE(a.process(zeros), b.process(zeros));
}

TEST(Scrambler, PilotPolarityProperties)
{
    int p[127];
    Scrambler::pilotPolarity(p);
    int plus = 0;
    int minus = 0;
    for (int v : p) {
        ASSERT_TRUE(v == 1 || v == -1);
        (v == 1 ? plus : minus)++;
    }
    // 0 -> +1 (63 zeros), 1 -> -1 (64 ones).
    EXPECT_EQ(plus, 63);
    EXPECT_EQ(minus, 64);
    // Standard sequence starts +1 +1 +1 +1 -1 -1 -1 +1.
    EXPECT_EQ(p[0], 1);
    EXPECT_EQ(p[1], 1);
    EXPECT_EQ(p[2], 1);
    EXPECT_EQ(p[3], 1);
    EXPECT_EQ(p[4], -1);
    EXPECT_EQ(p[5], -1);
    EXPECT_EQ(p[6], -1);
    EXPECT_EQ(p[7], 1);
}

TEST(ScramblerDeath, ZeroSeedPanics)
{
    EXPECT_DEATH(Scrambler(0x80), "nonzero");
}
