/**
 * @file
 * FFT unit tests: impulse/DC responses, unitarity (Parseval),
 * roundtrip, linearity, and a known analytic tone transform.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/random.hh"
#include "phy/fft.hh"

using namespace wilis;
using namespace wilis::phy;

namespace {

SampleVec
randomVec(int n, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    SampleVec v(static_cast<size_t>(n));
    for (auto &x : v)
        x = Sample(rng.nextDouble() - 0.5, rng.nextDouble() - 0.5);
    return v;
}

double
maxError(const SampleVec &a, const SampleVec &b)
{
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

double
energy(const SampleVec &v)
{
    double e = 0.0;
    for (const auto &x : v)
        e += std::norm(x);
    return e;
}

} // namespace

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    Fft fft(64);
    SampleVec x(64, Sample(0, 0));
    x[0] = Sample(1, 0);
    fft.forward(x);
    // Unitary: each bin = 1/sqrt(64) = 0.125.
    for (const auto &v : x) {
        EXPECT_NEAR(v.real(), 0.125, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, SingleToneLandsInOneBin)
{
    const int n = 64;
    const int k = 5;
    Fft fft(n);
    SampleVec x(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        double ang = 2.0 * std::numbers::pi * k * i / n;
        x[static_cast<size_t>(i)] = Sample(std::cos(ang), std::sin(ang));
    }
    fft.forward(x);
    for (int i = 0; i < n; ++i) {
        double expected = (i == k) ? std::sqrt(64.0) : 0.0;
        EXPECT_NEAR(std::abs(x[static_cast<size_t>(i)]), expected,
                    1e-10)
            << "bin " << i;
    }
}

TEST(Fft, RoundTripIsIdentity)
{
    for (int n : {2, 8, 64, 256}) {
        Fft fft(n);
        SampleVec x = randomVec(n, 123 + static_cast<std::uint64_t>(n));
        SampleVec orig = x;
        fft.forward(x);
        fft.inverse(x);
        EXPECT_LT(maxError(x, orig), 1e-12) << "size " << n;
    }
}

TEST(Fft, UnitaryPreservesEnergy)
{
    Fft fft(64);
    SampleVec x = randomVec(64, 7);
    double e0 = energy(x);
    fft.forward(x);
    EXPECT_NEAR(energy(x), e0, 1e-10);
    fft.inverse(x);
    EXPECT_NEAR(energy(x), e0, 1e-10);
}

TEST(Fft, Linearity)
{
    Fft fft(64);
    SampleVec a = randomVec(64, 1);
    SampleVec b = randomVec(64, 2);
    SampleVec sum(64);
    for (size_t i = 0; i < 64; ++i)
        sum[i] = a[i] + 2.0 * b[i];

    fft.forward(a);
    fft.forward(b);
    fft.forward(sum);
    SampleVec expect(64);
    for (size_t i = 0; i < 64; ++i)
        expect[i] = a[i] + 2.0 * b[i];
    EXPECT_LT(maxError(sum, expect), 1e-11);
}

TEST(FftDeath, NonPowerOfTwoPanics)
{
    EXPECT_DEATH(Fft(48), "power of two");
}

TEST(FftDeath, WrongInputSizePanics)
{
    Fft fft(64);
    SampleVec x(32);
    EXPECT_DEATH(fft.forward(x), "input size");
}
