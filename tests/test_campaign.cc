/**
 * @file
 * Campaign-layer tests: one RunRequest -> RunReport path behind
 * every frontend. The properties pinned here are the API contract:
 * shard reports merge into a report byte-identical to the unsharded
 * run (for any shard and thread count), the JSON round-trips through
 * save/load byte-exactly, the spec-argument parser accepts the same
 * preset / inline-config / file grammar everywhere, and malformed
 * campaigns (bad presets, overlapping shards, mixed configs) die
 * loudly instead of merging garbage.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/scenario.hh"
#include "sim/scenario_grid.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

std::string
calibrationPath()
{
    return std::string(WILIS_SOURCE_DIR) +
           "/data/network_calibration.txt";
}

/** A small replicated multi-cell campaign (4 reps of grid-3x3). */
RunRequest
campaignRequest(int shard_index, int shard_count, int threads)
{
    RunRequest req;
    req.spec = networkPreset("grid-3x3");
    req.spec.calibrationFile = calibrationPath();
    req.spec.reps = 4;
    req.slots = 40;
    req.threads = threads;
    req.shardIndex = shard_index;
    req.shardCount = shard_count;
    return req;
}

/** Run the campaign split @p shards ways and merge the reports. */
RunReport
runShardedCampaign(int shards, int threads)
{
    std::vector<RunReport> parts;
    for (int i = 0; i < shards; ++i)
        parts.push_back(
            runCampaignShard(campaignRequest(i, shards, threads)));
    return mergeReports(parts);
}

/** The scenario_grid demo grid, shrunk for test time. */
ScenarioGrid
demoGrid()
{
    ScenarioGrid grid;
    grid.base = scenarioPreset("awgn-mid");
    grid.rates = {0, 2};
    grid.channels = {"awgn", "rayleigh"};
    grid.snrsDb = {8.0};
    grid.payloads = {256};
    grid.seed = 0xC0FFEE;
    return grid;
}

RunReport
runShardedGrid(int shards, int threads)
{
    std::vector<RunReport> parts;
    for (int i = 0; i < shards; ++i) {
        GridRunRequest req;
        req.grid = demoGrid();
        req.packetsPerCell = 30;
        req.threads = threads;
        req.shardIndex = i;
        req.shardCount = shards;
        parts.push_back(runGridShard(req));
    }
    return mergeReports(parts);
}

} // namespace

// ---------------------------------------------- spec-arg parsing

TEST(ParseSpecArg, AcceptsPresetHeadWithOverrideTail)
{
    const NetworkSpec plain = networkPreset("grid-3x3");
    const NetworkSpec parsed =
        parseNetworkSpecArg("grid-3x3,net_seed=77,users=12");
    EXPECT_EQ(parsed.seed, 77u);
    EXPECT_EQ(parsed.numUsers, 12);
    EXPECT_EQ(parsed.topology.rows, plain.topology.rows);
    EXPECT_EQ(parsed.topology.cols, plain.topology.cols);

    const ScenarioSpec link = parseScenarioSpecArg("awgn-mid");
    EXPECT_EQ(link.toConfig().toString(),
              scenarioPreset("awgn-mid").toConfig().toString());
}

TEST(ParseSpecArg, AcceptsInlineConfigAndPresetKey)
{
    // A head containing '=' is an inline config applied over the
    // caller's defaults...
    NetworkSpec defaults = networkPreset("grid-3x3");
    const NetworkSpec inl =
        parseNetworkSpecArg("users=20,reps=3", defaults);
    EXPECT_EQ(inl.numUsers, 20);
    EXPECT_EQ(inl.reps, 3);
    EXPECT_EQ(inl.topology.rows, defaults.topology.rows);

    // ...and an embedded preset= key rebases onto that preset first.
    const NetworkSpec rebased =
        parseNetworkSpecArg("preset=grid-3x3,users=20");
    EXPECT_EQ(rebased.numUsers, 20);
    EXPECT_EQ(rebased.topology.cols,
              networkPreset("grid-3x3").topology.cols);
}

TEST(ParseSpecArg, RoundTripsThroughCanonicalString)
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.reps = 4;
    const std::string canonical = spec.toConfig().toString();
    const NetworkSpec reparsed = parseNetworkSpecArg(canonical);
    EXPECT_EQ(reparsed.toConfig().toString(), canonical);
}

TEST(ParseSpecArgDeath, RejectsBadPresetsAndUnknownKeys)
{
    EXPECT_DEATH(parseNetworkSpecArg("no-such-preset"), "preset");
    EXPECT_DEATH(parseNetworkSpecArg("grid-3x3,bogus_key=1"),
                 "unknown");
    EXPECT_DEATH(parseScenarioSpecArg("awgn-mid,users=4"),
                 "unknown");
    // CLI-only keys are not spec keys; the CLI peels them before
    // this parser ever sees the config.
    EXPECT_DEATH(parseScenarioSpecArg("awgn-mid,packets=100"),
                 "unknown");
}

// -------------------------------------------------- shard merging

TEST(Campaign, ShardAndThreadCountsAreInvisible)
{
    const RunReport baseline = runShardedCampaign(1, 2);
    EXPECT_EQ(baseline.kind, "network");
    EXPECT_EQ(baseline.unitsTotal, 4);
    ASSERT_EQ(baseline.units.size(), 4u);
    // Rep 0 runs the master seed; later reps fork off it.
    EXPECT_EQ(baseline.units[0].seed, networkPreset("grid-3x3").seed);
    EXPECT_NE(baseline.units[1].seed, baseline.units[0].seed);

    const std::string text = baseline.toJsonText();
    EXPECT_EQ(runShardedCampaign(4, 2).toJsonText(), text);
    EXPECT_EQ(runShardedCampaign(3, 1).toJsonText(), text);
}

TEST(Campaign, GridShardingIsInvisible)
{
    const std::string text = runShardedGrid(1, 2).toJsonText();
    EXPECT_EQ(runShardedGrid(3, 2).toJsonText(), text);
    EXPECT_EQ(runShardedGrid(2, 1).toJsonText(), text);
}

TEST(Campaign, MergedAggregateMatchesManualMerge)
{
    const RunReport merged = runShardedCampaign(2, 2);
    ASSERT_TRUE(merged.merged);
    UserStats manual;
    for (const UnitReport &u : merged.units)
        manual.merge(u.stats);
    EXPECT_EQ(merged.aggregate.stats.delivered, manual.delivered);
    EXPECT_EQ(merged.aggregate.stats.goodputBits, manual.goodputBits);
    EXPECT_EQ(merged.aggregate.unit, -1);
}

TEST(Campaign, ReportSaveLoadRoundTripsByteExactly)
{
    const RunReport merged = runShardedCampaign(2, 2);
    const std::string path =
        ::testing::TempDir() + "wilis_campaign_report.json";
    merged.save(path);
    const RunReport loaded = RunReport::load(path);
    std::remove(path.c_str());
    EXPECT_TRUE(loaded.merged);
    EXPECT_EQ(loaded.toJsonText(), merged.toJsonText());

    // Unmerged shard reports round-trip too (what wilis_campaign
    // collects from its workers before merging).
    const RunReport shard = runCampaignShard(campaignRequest(1, 4, 1));
    const RunReport reparsed =
        RunReport::fromJsonText(shard.toJsonText(), "test");
    EXPECT_FALSE(reparsed.merged);
    EXPECT_EQ(reparsed.toJsonText(), shard.toJsonText());
}

// ----------------------------------------------------- validation

TEST(CampaignDeath, MergeRejectsMalformedShardSets)
{
    const RunReport a = runCampaignShard(campaignRequest(0, 2, 1));
    const RunReport b = runCampaignShard(campaignRequest(1, 2, 1));

    EXPECT_DEATH(mergeReports({}), "");
    // Overlap: the same units reported twice.
    EXPECT_DEATH(mergeReports({a, a}), "two shards");
    // Gap: shard 1 of 2 missing.
    EXPECT_DEATH(mergeReports({a}), "no shard reported");
    // Mixed campaigns: configs differ.
    RunReport other = b;
    other.config += ",x";
    EXPECT_DEATH(mergeReports({a, other}), "different campaigns");
    // Merging a merged report is a programming error.
    const RunReport merged = mergeReports({a, b});
    EXPECT_DEATH(mergeReports({merged}), "already-merged");
}

TEST(CampaignDeath, ShardRunRejectsInvalidRequests)
{
    // Tracing a replicated campaign would interleave trace files.
    RunRequest traced = campaignRequest(0, 1, 1);
    traced.traceFile = ::testing::TempDir() + "wilis_campaign.trace";
    EXPECT_DEATH(runCampaignShard(traced), "reps=1");

    // Checkpointing is a single-process, single-rep feature.
    RunRequest ckpt = campaignRequest(0, 2, 1);
    ckpt.spec.checkpoint.file =
        ::testing::TempDir() + "wilis_campaign.snap";
    ckpt.spec.checkpoint.everySlots = 10;
    EXPECT_DEATH(runCampaignShard(ckpt), "single shard");

    // Shard index out of range.
    EXPECT_DEATH(runCampaignShard(campaignRequest(3, 2, 1)), "");
}
