/**
 * @file
 * Multi-cell building blocks: the log-distance pathloss +
 * log-normal shadowing model, the deterministic cell-grid topology
 * with per-user 2-D placement, the JakesFader extraction (pinned
 * against RayleighChannel), the per-user traffic models and the
 * per-cell schedulers. Everything here must be a pure function of
 * its seeds -- replayable in any order.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "channel/fading.hh"
#include "channel/pathloss.hh"
#include "mac/arq.hh"
#include "mac/scheduler.hh"
#include "mac/traffic.hh"
#include "phy/ofdm_symbol.hh"
#include "sim/topology.hh"

using namespace wilis;

// ------------------------------------------------------- pathloss

TEST(Pathloss, LogDistanceMonotoneAndAnchored)
{
    channel::PathlossSpec spec;
    spec.refSnrDb = 40.0;
    spec.refDistanceM = 10.0;
    spec.exponent = 3.5;
    spec.shadowSigmaDb = 0.0;
    channel::PathlossModel pl(spec, 1);

    // Inside the reference distance the model is flat.
    EXPECT_DOUBLE_EQ(pl.pathlossDb(5.0), 0.0);
    EXPECT_DOUBLE_EQ(pl.pathlossDb(10.0), 0.0);
    // One decade of distance costs 10 * n dB.
    EXPECT_NEAR(pl.pathlossDb(100.0), 35.0, 1e-12);
    EXPECT_LT(pl.pathlossDb(50.0), pl.pathlossDb(200.0));
    // With sigma 0 the link SNR is exactly ref - pathloss.
    EXPECT_NEAR(pl.linkSnrDb(100.0, 3, 7), 5.0, 1e-12);
}

TEST(Pathloss, ShadowingIsKeyedAndScaled)
{
    channel::PathlossSpec spec;
    spec.shadowSigmaDb = 8.0;
    channel::PathlossModel a(spec, 42);
    channel::PathlossModel b(spec, 42);
    channel::PathlossModel c(spec, 43);

    // Same (seed, user, cell) -> same draw, regardless of instance
    // or query order.
    EXPECT_DOUBLE_EQ(a.shadowingDb(4, 2), b.shadowingDb(4, 2));
    EXPECT_DOUBLE_EQ(a.shadowingDb(0, 0), b.shadowingDb(0, 0));
    EXPECT_NE(a.shadowingDb(4, 2), c.shadowingDb(4, 2));
    EXPECT_NE(a.shadowingDb(4, 2), a.shadowingDb(4, 3));
    EXPECT_NE(a.shadowingDb(4, 2), a.shadowingDb(5, 2));

    // Zero-mean, sigma-scaled: check moments over many links.
    double sum = 0.0;
    double sq = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const double s = a.shadowingDb(i, i % 7);
        sum += s;
        sq += s * s;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.5);
    EXPECT_NEAR(std::sqrt(sq / n), 8.0, 0.5);
}

// ------------------------------------------------------- topology

namespace {

sim::TopologySpec
gridSpec(int rows, int cols)
{
    sim::TopologySpec t;
    t.rows = rows;
    t.cols = cols;
    t.cellSpacingM = 500.0;
    t.cellRadiusM = 250.0;
    t.minDistanceM = 20.0;
    return t;
}

} // namespace

TEST(Topology, GridGeometryAndRoundRobinAssignment)
{
    sim::Topology topo(gridSpec(2, 3), 13, 0xBEEF);
    EXPECT_EQ(topo.numCells(), 6);
    EXPECT_EQ(topo.numUsers(), 13);

    // Row-major cell centers on the spacing lattice.
    EXPECT_DOUBLE_EQ(topo.cellCenter(0).x, 0.0);
    EXPECT_DOUBLE_EQ(topo.cellCenter(2).x, 1000.0);
    EXPECT_DOUBLE_EQ(topo.cellCenter(3).y, 500.0);

    // Users round-robin across cells; populations differ by <= 1.
    for (int u = 0; u < 13; ++u)
        EXPECT_EQ(topo.servingCell(u), u % 6) << "user " << u;
    for (int c = 0; c < 6; ++c) {
        const auto &users = topo.cellUsers(c);
        EXPECT_GE(static_cast<int>(users.size()), 2);
        EXPECT_LE(static_cast<int>(users.size()), 3);
        for (int u : users)
            EXPECT_EQ(topo.servingCell(u), c);
    }
}

TEST(Topology, PlacementIsDeterministicAndInsideTheCell)
{
    sim::Topology a(gridSpec(3, 3), 36, 0xCAFE);
    sim::Topology b(gridSpec(3, 3), 36, 0xCAFE);
    sim::Topology c(gridSpec(3, 3), 36, 0xCAFF);

    bool any_moved = false;
    for (int u = 0; u < 36; ++u) {
        EXPECT_DOUBLE_EQ(a.userPosition(u).x, b.userPosition(u).x);
        EXPECT_DOUBLE_EQ(a.userPosition(u).y, b.userPosition(u).y);
        any_moved |= a.userPosition(u).x != c.userPosition(u).x;

        const double d = a.servingDistanceM(u);
        EXPECT_GE(d, 20.0) << "user " << u;
        EXPECT_LT(d, 250.0) << "user " << u;
        // The recorded serving distance is the actual Euclidean
        // distance to the serving center.
        const sim::Position p = a.userPosition(u);
        const sim::Position bs = a.cellCenter(a.servingCell(u));
        const double dx = p.x - bs.x;
        const double dy = p.y - bs.y;
        EXPECT_NEAR(std::sqrt(dx * dx + dy * dy), d, 1e-9);
    }
    EXPECT_TRUE(any_moved) << "different seeds, different drop";
}

TEST(Topology, InterferenceDegradesSinrBelowSnr)
{
    sim::TopologySpec spec = gridSpec(3, 3);
    spec.pathloss.shadowSigmaDb = 0.0;
    sim::Topology topo(spec, 18, 1);
    for (int u = 0; u < 18; ++u) {
        // The serving link is the strongest (no shadowing, nearest
        // center by construction of the drop)...
        const int serv = topo.servingCell(u);
        for (int c = 0; c < 9; ++c) {
            if (c != serv) {
                EXPECT_GT(topo.linkSnrDb(u, serv),
                          topo.linkSnrDb(u, c))
                    << "user " << u << " cell " << c;
            }
        }
        // ...and all-cells-on interference always costs SINR.
        EXPECT_LT(topo.staticSinrDb(u), topo.servingSnrDb(u));
    }
}

// ----------------------------------------------------- JakesFader

TEST(JakesFader, PinsTheRayleighChannelFadingProcess)
{
    // The fader was extracted from RayleighChannel; same seed and
    // Doppler must reproduce the channel's gain trajectory exactly
    // (the refactor may not move any PR 1-4 physics).
    const std::uint64_t seed = 77;
    channel::JakesFader fader(20.0, seed);
    channel::RayleighChannel chan(10.0, 20.0, seed);
    for (std::uint64_t p : {0ull, 1ull, 5ull, 9ull}) {
        for (int s : {0, 1, 3}) {
            const double t_us =
                static_cast<double>(p) * 2000.0 +
                s * phy::OfdmGeometry::kSymbolUs;
            EXPECT_EQ(fader.gainAt(t_us), chan.gain(p, s))
                << "packet " << p << " symbol " << s;
        }
    }

    // Unit mean power over a long stretch.
    double acc = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        acc += std::norm(fader.gainAt(i * 2000.0));
    EXPECT_NEAR(acc / n, 1.0, 0.15);
}

// -------------------------------------------------------- traffic

TEST(Traffic, FullBufferIsAlwaysBackloggedAndQueueless)
{
    mac::TrafficSpec spec;
    spec.kind = mac::TrafficKind::FullBuffer;
    mac::TrafficSource src(spec, 1);
    for (std::uint64_t t = 0; t < 5; ++t) {
        src.tick(t);
        EXPECT_TRUE(src.backlogged());
        EXPECT_EQ(src.depth(), 0);
        EXPECT_EQ(src.pop(t).arrival, t)
            << "frames materialize at service";
    }
    EXPECT_EQ(src.arrivals(), 0u);
    EXPECT_EQ(src.drops(), 0u);
}

TEST(Traffic, PoissonMatchesItsMeanAndReplays)
{
    mac::TrafficSpec spec;
    spec.kind = mac::TrafficKind::Poisson;
    spec.load = 0.3;
    spec.queueLimit = 1000000; // count arrivals, not drops
    mac::TrafficSource a(spec, 99);
    mac::TrafficSource b(spec, 99);
    const std::uint64_t slots = 20000;
    for (std::uint64_t t = 0; t < slots; ++t) {
        a.tick(t);
        b.tick(t);
    }
    EXPECT_EQ(a.arrivals(), b.arrivals()) << "same seed, same draw";
    const double mean =
        static_cast<double>(a.arrivals()) /
        static_cast<double>(slots);
    EXPECT_NEAR(mean, 0.3, 0.02);
}

TEST(Traffic, OnOffBurstsAndQueueBound)
{
    mac::TrafficSpec spec;
    spec.kind = mac::TrafficKind::OnOff;
    spec.load = 1.0;
    spec.onSlots = 16.0;
    spec.offSlots = 48.0;
    spec.queueLimit = 8;
    mac::TrafficSource src(spec, 7);

    std::uint64_t on_slots = 0;
    const std::uint64_t slots = 20000;
    for (std::uint64_t t = 0; t < slots; ++t) {
        src.tick(t);
        on_slots += src.on() ? 1 : 0;
        EXPECT_LE(src.depth(), 8);
    }
    // Duty cycle ~ on / (on + off) = 25%.
    const double duty = static_cast<double>(on_slots) /
                        static_cast<double>(slots);
    EXPECT_NEAR(duty, 0.25, 0.05);
    // Nothing ever drained the queue, so the bound must have
    // dropped most of the burst traffic.
    EXPECT_GT(src.arrivals(), slots / 8);
    EXPECT_EQ(src.drops() + 8, src.arrivals());
}

TEST(Traffic, QueueIsFifoWithArrivalStamps)
{
    mac::TrafficSpec spec;
    spec.kind = mac::TrafficKind::Poisson;
    spec.load = 0.9;
    mac::TrafficSource src(spec, 3);
    std::uint64_t last = 0;
    bool first = true;
    for (std::uint64_t t = 0; t < 200; ++t) {
        src.tick(t);
        if (src.backlogged()) {
            const std::uint64_t arrival = src.pop(t).arrival;
            EXPECT_LE(arrival, t);
            if (!first) {
                EXPECT_GE(arrival, last) << "FIFO order";
            }
            last = arrival;
            first = false;
        }
    }
    EXPECT_FALSE(first) << "load 0.9 must produce arrivals";
}

// ------------------------------------------------------ scheduler

TEST(Scheduler, RoundRobinCyclesOverEligibleUsers)
{
    mac::CellScheduler::Config cfg;
    cfg.kind = mac::SchedulerKind::RoundRobin;
    mac::CellScheduler sched(cfg, 4);

    std::vector<std::uint8_t> all(4, 1);
    std::vector<double> rate(4, 0.0);
    std::vector<int> grants;
    for (int i = 0; i < 8; ++i) {
        const int pick = sched.pick(all, rate);
        grants.push_back(pick);
        sched.update(pick, 1000.0);
    }
    EXPECT_EQ(grants,
              (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));

    // Ineligible users are skipped without losing the rotation.
    std::vector<std::uint8_t> some = {0, 1, 0, 1};
    const int pick = sched.pick(some, rate);
    EXPECT_EQ(pick, 1);
    sched.update(pick, 1000.0);
    EXPECT_EQ(sched.pick(some, rate), 3);

    std::vector<std::uint8_t> none(4, 0);
    EXPECT_EQ(sched.pick(none, rate), -1);
}

TEST(Scheduler, ProportionalFairBalancesRateAndStarvation)
{
    mac::CellScheduler::Config cfg;
    cfg.kind = mac::SchedulerKind::ProportionalFair;
    cfg.pfHorizonSlots = 16.0;
    mac::CellScheduler sched(cfg, 2);

    // Constant unequal channels: proportional fairness converges
    // to *equal airtime* (that is its defining property -- the
    // stronger user wins throughput, not slots).
    std::vector<std::uint8_t> all(2, 1);
    std::vector<double> rate = {3.0, 1.0};
    int grants0 = 0;
    for (int i = 0; i < 400; ++i) {
        const int pick = sched.pick(all, rate);
        if (pick == 0)
            ++grants0;
        sched.update(pick, rate[static_cast<size_t>(pick)]);
    }
    EXPECT_NEAR(grants0, 200, 20)
        << "constant channels -> equal airtime";

    // Fluctuating channel: PF rides the peaks. User 0 alternates
    // between a strong and a weak slot; nearly every grant it gets
    // must land on a strong one.
    mac::CellScheduler opp(cfg, 2);
    int strong_grants = 0;
    int weak_grants = 0;
    for (int i = 0; i < 400; ++i) {
        const bool strong = i % 2 == 0;
        std::vector<double> r = {strong ? 4.0 : 0.5, 1.0};
        const int pick = opp.pick(all, r);
        if (pick == 0)
            (strong ? strong_grants : weak_grants) += 1;
        opp.update(pick, r[static_cast<size_t>(pick)]);
    }
    EXPECT_GT(strong_grants, 8 * (weak_grants + 1))
        << "PF must schedule the fluctuating user at its peaks";
    EXPECT_GT(strong_grants, 50);

    // Deterministic tie-break: equal metrics pick the lowest index.
    mac::CellScheduler tie(cfg, 3);
    std::vector<std::uint8_t> el(3, 1);
    std::vector<double> eq(3, 2.0);
    EXPECT_EQ(tie.pick(el, eq), 0);
}

// ----------------------------------------------- ARQ grant gating

TEST(Arq, NewFramesAreGatedByAllowNew)
{
    mac::Arq::Config cfg;
    cfg.mode = mac::ArqMode::SelectiveRepeat;
    cfg.window = 4;
    cfg.ackDelaySlots = 0;
    mac::Arq arq(cfg);

    EXPECT_TRUE(arq.windowHasRoom());
    EXPECT_FALSE(arq.hasResend());

    // Nothing queued: allow_new=false keeps the link idle.
    std::uint64_t seq = 0;
    EXPECT_FALSE(arq.nextToSend(0, seq, false));

    // A failed new frame becomes a resend that ignores the gate.
    EXPECT_TRUE(arq.nextToSend(0, seq, true));
    EXPECT_EQ(seq, 0u);
    arq.onSendResult(seq, false);
    EXPECT_TRUE(arq.hasResend());
    EXPECT_TRUE(arq.nextToSend(1, seq, false));
    EXPECT_EQ(seq, 0u);
    arq.onSendResult(seq, true);

    std::vector<mac::Arq::Delivery> out;
    arq.tick(2, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].attempts, 2);
}
