/**
 * @file
 * Multipath channel tests: frequency selectivity, cyclic-prefix
 * protection (per-bin equalized loopback is exact at high SNR),
 * energy conservation, batch/streaming agreement, and end-to-end
 * decode behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "channel/multipath.hh"
#include "common/stats.hh"
#include "phy/ofdm_symbol.hh"
#include "sim/sweep.hh"
#include "sim/testbench.hh"

using namespace wilis;
using namespace wilis::channel;

TEST(Multipath, BinGainsVaryAcrossSubcarriers)
{
    li::Config cfg = li::Config::fromString(
        "snr_db=100,num_taps=4,delay_spread=3,seed=3");
    MultipathChannel ch(cfg);
    double min_mag = 1e18;
    double max_mag = 0.0;
    for (int bin = 0; bin < 64; ++bin) {
        double m = std::abs(ch.binGain(0, 0, bin));
        min_mag = std::min(min_mag, m);
        max_mag = std::max(max_mag, m);
    }
    // Frequency-selective: a real spread between best and worst bin.
    EXPECT_GT(max_mag / (min_mag + 1e-12), 1.5);
}

TEST(Multipath, SingleTapIsFlat)
{
    li::Config cfg = li::Config::fromString(
        "snr_db=100,num_taps=1,seed=3");
    MultipathChannel ch(cfg);
    Sample h0 = ch.binGain(0, 0, 0);
    for (int bin = 0; bin < 64; ++bin)
        EXPECT_LT(std::abs(ch.binGain(0, 0, bin) - h0), 1e-12);
}

TEST(Multipath, UnitMeanPower)
{
    li::Config cfg = li::Config::fromString(
        "snr_db=100,num_taps=4,delay_spread=3,seed=5");
    MultipathChannel ch(cfg);
    RunningStats pwr;
    for (std::uint64_t p = 0; p < 4000; ++p) {
        for (int bin = 0; bin < 64; bin += 8)
            pwr.add(std::norm(ch.binGain(p, 0, bin)));
    }
    EXPECT_NEAR(pwr.mean(), 1.0, 0.12);
}

TEST(Multipath, BatchAndStreamingAgree)
{
    li::Config cfg = li::Config::fromString(
        "snr_db=10,num_taps=4,delay_spread=3,seed=7");
    MultipathChannel batch(cfg);
    MultipathChannel stream(cfg);

    SplitMix64 rng(4);
    SampleVec samples(400);
    for (auto &s : samples)
        s = Sample(rng.nextDouble() - 0.5, rng.nextDouble() - 0.5);

    SampleVec expect = samples;
    batch.apply(expect, 9);
    for (size_t i = 0; i < samples.size(); ++i) {
        Sample got = stream.impairSample(samples[i], 9, i);
        ASSERT_LT(std::abs(got - expect[i]), 1e-12) << "sample " << i;
    }
}

TEST(MultipathDeath, OutOfOrderStreamingPanics)
{
    li::Config cfg = li::Config::fromString("snr_db=10,seed=7");
    MultipathChannel ch(cfg);
    ch.impairSample(Sample(1, 0), 0, 0);
    EXPECT_DEATH(ch.impairSample(Sample(1, 0), 0, 5), "out of order");
}

TEST(Multipath, HighSnrLoopbackWithPerBinEqualization)
{
    // CP absorbs the delay spread and perfect per-bin CSI undoes the
    // frequency selectivity: essentially error-free at 45 dB.
    sim::TestbenchConfig cfg;
    cfg.rate = 4;
    cfg.rx.decoder = "bcjr";
    cfg.channel = "multipath";
    cfg.channelCfg = li::Config::fromString(
        "snr_db=45,num_taps=4,delay_spread=3,seed=11");
    sim::Testbench tb(cfg);
    int ok = 0;
    for (std::uint64_t p = 0; p < 10; ++p)
        ok += tb.runPacket(1000, p).ok;
    EXPECT_GE(ok, 9);
}

TEST(Multipath, ModerateSnrDecodes)
{
    sim::TestbenchConfig cfg;
    cfg.rate = 2;
    cfg.rx.decoder = "bcjr";
    cfg.channel = "multipath";
    cfg.channelCfg = li::Config::fromString(
        "snr_db=14,num_taps=4,delay_spread=3,seed=13");
    ErrorStats s = sim::measureBer(
        sim::ScenarioSpec::fromTestbench(cfg, 1000), 30, 2);
    EXPECT_LT(s.ber(), 0.05);
    // And it is harder than flat fading at the same mean SNR only in
    // uncoded terms; with interleaving + coding it decodes.
    EXPECT_GT(s.bits, 0u);
}

TEST(Multipath, CsiWeightingHelpsOnSelectiveChannels)
{
    // Zero-forcing alone amplifies noise on notched subcarriers;
    // weighting metrics by |H| restores most of the loss. On a flat
    // AWGN channel the weight is 1 and nothing changes.
    sim::TestbenchConfig plain;
    plain.rate = 2;
    plain.rx.decoder = "bcjr";
    plain.channel = "multipath";
    plain.channelCfg = li::Config::fromString(
        "snr_db=10,num_taps=4,delay_spread=3,seed=21");
    sim::TestbenchConfig weighted = plain;
    weighted.rx.applyCsiWeight = true;

    ErrorStats zf = sim::measureBer(
        sim::ScenarioSpec::fromTestbench(plain, 1000), 40, 2);
    ErrorStats mf = sim::measureBer(
        sim::ScenarioSpec::fromTestbench(weighted, 1000), 40, 2);
    ASSERT_GT(zf.errors, 50u) << "need a lossy operating point";
    EXPECT_LT(mf.ber(), 0.5 * zf.ber());

    // Flat channel: weighting is a no-op.
    sim::TestbenchConfig awgn;
    awgn.rate = 2;
    awgn.rx.decoder = "bcjr";
    awgn.channelCfg = li::Config::fromString("snr_db=4,seed=8");
    sim::TestbenchConfig awgn_w = awgn;
    awgn_w.rx.applyCsiWeight = true;
    ErrorStats a = sim::measureBer(
        sim::ScenarioSpec::fromTestbench(awgn, 1000), 20, 2);
    ErrorStats b = sim::measureBer(
        sim::ScenarioSpec::fromTestbench(awgn_w, 1000), 20, 2);
    EXPECT_EQ(a.errors, b.errors);
}

TEST(Multipath, RegistryCreates)
{
    auto ch = makeChannel("multipath",
                          li::Config::fromString("snr_db=12,seed=1"));
    EXPECT_EQ(ch->name(), "multipath");
}
