/**
 * @file
 * Property-style tests of the queue disciplines, the class-aware
 * scheduler arbitration and the ARQ ordering invariants, driven by
 * randomized (but seeded, hence reproducible) arrival streams:
 *  - bounded queues never exceed queue_limit under any discipline;
 *  - strict priority never inverts a control/data pop and preserves
 *    arrival order within each class;
 *  - drop_head evicts the oldest queued packet, so the survivors of
 *    an overload are exactly the newest arrivals;
 *  - the scheduler's urgent mask restricts both RR and PF to the
 *    urgent subset without disturbing the no-urgent path;
 *  - fixed contention charges k slots for a k-contended grant;
 *  - ARQ in-order delivery shows up in the trace as strictly
 *    increasing, duplicate-free ack sequences per user.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.hh"
#include "mac/packet_trace.hh"
#include "mac/scheduler.hh"
#include "mac/traffic.hh"
#include "sim/network_sim.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

std::string
calibrationPath()
{
    return std::string(WILIS_SOURCE_DIR) +
           "/data/network_calibration.txt";
}

mac::TrafficSpec
overloadSpec(mac::QdiscKind qdisc, double control_rate = 0.0)
{
    mac::TrafficSpec spec;
    spec.kind = mac::TrafficKind::Poisson;
    spec.load = 1.5; // ~3x a one-pop-per-slot service rate
    spec.queueLimit = 8;
    spec.qdisc = qdisc;
    spec.controlRate = control_rate;
    return spec;
}

} // namespace

// --------------------------------------------------- queue bounds

TEST(Queues, DepthNeverExceedsQueueLimitUnderAnyDiscipline)
{
    for (auto qdisc :
         {mac::QdiscKind::Fifo, mac::QdiscKind::StrictPriority,
          mac::QdiscKind::DropHead}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            mac::TrafficSource src(overloadSpec(qdisc, 0.2), seed);
            // Service pattern randomized by an independent stream:
            // pop in ~40% of slots, so the queue slams into its
            // bound and recovers repeatedly.
            const CounterRng service(seed * 7919);
            for (std::uint64_t t = 0; t < 2000; ++t) {
                src.tick(t);
                ASSERT_LE(src.depth(), 8)
                    << "qdisc " << mac::qdiscKindName(qdisc)
                    << " seed " << seed << " slot " << t;
                if (src.backlogged() && service.doubleAt(t) < 0.4)
                    src.pop(t);
            }
            EXPECT_GT(src.drops(), 0u)
                << "3x overload must overflow an 8-deep queue";
        }
    }
}

// ----------------------------------------------- strict priority

TEST(Queues, StrictPriorityNeverInvertsAndKeepsPerClassOrder)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        mac::TrafficSource src(
            overloadSpec(mac::QdiscKind::StrictPriority, 0.3),
            seed);
        const CounterRng service(seed * 104729);
        std::map<mac::TrafficClass, std::uint64_t> last;
        std::uint64_t ctrl_pops = 0;
        for (std::uint64_t t = 0; t < 2000; ++t) {
            src.tick(t);
            if (!src.backlogged() || service.doubleAt(t) >= 0.6)
                continue;
            const bool ctrl_waiting = src.controlBacklogged();
            const mac::Packet p = src.pop(t);
            if (ctrl_waiting) {
                ASSERT_EQ(p.cls, mac::TrafficClass::Control)
                    << "seed " << seed << " slot " << t
                    << ": data popped past waiting control";
            }
            ctrl_pops += p.cls == mac::TrafficClass::Control;
            // Arrival order within the class: per-user seqs are
            // assigned in arrival order, so they must come out
            // increasing per class.
            auto it = last.find(p.cls);
            if (it != last.end()) {
                ASSERT_GT(p.seq, it->second)
                    << "seed " << seed << " slot " << t;
            }
            last[p.cls] = p.seq;
        }
        EXPECT_GT(ctrl_pops, 0u) << "control plane must carry";
    }
}

TEST(Queues, FifoPopsInGlobalArrivalOrderAcrossClasses)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        mac::TrafficSource src(
            overloadSpec(mac::QdiscKind::Fifo, 0.3), seed);
        const CounterRng service(seed * 15485863);
        std::uint64_t last = 0;
        bool first = true;
        for (std::uint64_t t = 0; t < 2000; ++t) {
            src.tick(t);
            if (!src.backlogged() || service.doubleAt(t) >= 0.6)
                continue;
            const mac::Packet p = src.pop(t);
            if (!first) {
                ASSERT_GT(p.seq, last)
                    << "seed " << seed << " slot " << t
                    << ": fifo must serve global arrival order";
            }
            last = p.seq;
            first = false;
        }
    }
}

// -------------------------------------------------- drop_head

TEST(Queues, DropHeadEvictsOldestSoSurvivorsAreTheNewest)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        mac::TrafficSpec spec = overloadSpec(mac::QdiscKind::DropHead);
        mac::TrafficSource src(spec, seed);
        // Never service: every overflow evicts the head, so the
        // queue must end up holding exactly the newest queueLimit
        // arrivals.
        for (std::uint64_t t = 0; t < 200; ++t)
            src.tick(t);
        const std::uint64_t total = src.arrivals();
        ASSERT_GT(src.drops(), 0u);
        ASSERT_EQ(src.depth(), spec.queueLimit);
        std::uint64_t expect = total -
                               static_cast<std::uint64_t>(
                                   spec.queueLimit);
        while (src.backlogged()) {
            const mac::Packet p = src.pop(200);
            ASSERT_EQ(p.seq, expect)
                << "seed " << seed
                << ": survivors must be the newest arrivals in "
                   "order";
            ++expect;
        }
        EXPECT_EQ(expect, total);
    }
}

TEST(Queues, DropHeadTraceRecordsHeadEvictionsOfTheOldest)
{
    mac::TrafficSpec spec = overloadSpec(mac::QdiscKind::DropHead);
    mac::TrafficSource src(spec, 5);
    mac::PacketTrace trace(1);
    src.bindTrace(&trace, 0, 0, 0);
    for (std::uint64_t t = 0; t < 120; ++t)
        src.tick(t);
    trace.finalize();
    std::uint64_t enqueues = 0;
    std::uint64_t evictions = 0;
    std::uint64_t last_evicted = 0;
    for (const mac::PacketTrace::Entry &e : trace.entries()) {
        if (e.event == mac::PacketEvent::Enqueue)
            ++enqueues;
        if (e.event != mac::PacketEvent::QueueDrop)
            continue;
        EXPECT_EQ(e.arg0, 1) << "drop_head never tail-drops";
        EXPECT_GE(e.arg1, 0) << "evicted age in slots";
        if (evictions) {
            EXPECT_GT(e.seq, last_evicted)
                << "evictions proceed from the oldest forward";
        }
        last_evicted = e.seq;
        ++evictions;
    }
    EXPECT_EQ(enqueues, src.arrivals())
        << "drop_head admits every arrival";
    EXPECT_EQ(evictions, src.drops());
}

TEST(Queues, FifoTailDropsAreTracedAsArrivalDrops)
{
    mac::TrafficSpec spec = overloadSpec(mac::QdiscKind::Fifo);
    mac::TrafficSource src(spec, 5);
    mac::PacketTrace trace(1);
    src.bindTrace(&trace, 0, 0, 0);
    for (std::uint64_t t = 0; t < 120; ++t)
        src.tick(t);
    trace.finalize();
    std::uint64_t tail_drops = 0;
    for (const mac::PacketTrace::Entry &e : trace.entries()) {
        if (e.event != mac::PacketEvent::QueueDrop)
            continue;
        EXPECT_EQ(e.arg0, 0) << "fifo drops the arrival itself";
        EXPECT_EQ(e.arg1, 0) << "a dropped arrival has age 0";
        ++tail_drops;
    }
    EXPECT_EQ(tail_drops, src.drops());
    ASSERT_GT(tail_drops, 0u);
}

// ------------------------------------- class-aware arbitration

TEST(Queues, SchedulerUrgentMaskRestrictsRoundRobinAndPf)
{
    const std::vector<std::uint8_t> elig = {1, 1, 1, 1};
    const std::vector<std::uint8_t> urgent = {0, 1, 0, 1};
    const std::vector<double> inst = {4.0, 1.0, 3.0, 0.5};

    for (auto kind : {mac::SchedulerKind::RoundRobin,
                      mac::SchedulerKind::ProportionalFair}) {
        mac::CellScheduler::Config cfg;
        cfg.kind = kind;
        mac::CellScheduler sched(cfg, 4);
        for (int round = 0; round < 12; ++round) {
            const int pick = sched.pick(elig, inst, &urgent);
            EXPECT_TRUE(pick == 1 || pick == 3)
                << mac::schedulerKindName(kind) << " round "
                << round
                << ": picked a non-urgent user past urgent ones";
            sched.update(pick, 1000.0);
        }
        // No urgent users -> the mask must be a no-op: same picks
        // as the two-argument overload on a fresh twin.
        mac::CellScheduler a(cfg, 4);
        mac::CellScheduler b(cfg, 4);
        const std::vector<std::uint8_t> none = {0, 0, 0, 0};
        for (int round = 0; round < 12; ++round) {
            const int pa = a.pick(elig, inst, &none);
            const int pb = b.pick(elig, inst);
            EXPECT_EQ(pa, pb)
                << mac::schedulerKindName(kind) << " round "
                << round;
            a.update(pa, 1000.0);
            b.update(pb, 1000.0);
        }
    }
}

TEST(Queues, FixedContentionChargesKSlotsPerContestedGrant)
{
    // grid-3x3 with full-buffer traffic: all 4 users of every cell
    // are always eligible, so every grant is contested by k = 4 and
    // the medium carries exactly one frame per 4 slots per cell.
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    spec.traffic.kind = mac::TrafficKind::FullBuffer;
    spec.scheduler.contention = mac::ContentionMode::Fixed;
    const std::uint64_t slots = 120;
    NetworkResult res = NetworkSim(spec).run(slots, 2);
    EXPECT_EQ(res.aggregate.framesSent,
              9 * ((slots + 3) / 4))
        << "k=4 contention must quarter the grant rate";

    NetworkSpec free = spec;
    free.scheduler.contention = mac::ContentionMode::None;
    NetworkResult r_free = NetworkSim(free).run(slots, 2);
    EXPECT_EQ(r_free.aggregate.framesSent, 9 * slots)
        << "contention=none keeps one grant per cell per slot";
}

// ------------------------------------------------ ARQ invariants

TEST(Queues, ArqDeliveriesAreInOrderAndDuplicateFreePerUser)
{
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    spec.trace = true;
    // Lossy enough that retransmissions actually happen.
    spec.traffic.kind = mac::TrafficKind::Poisson;
    spec.traffic.load = 0.6;
    NetworkResult res = NetworkSim(spec).run(250, 2);
    ASSERT_NE(res.trace, nullptr);
    ASSERT_GT(res.aggregate.retransmissions, 0u);

    std::map<int, std::uint64_t> last_done;
    std::uint64_t terminal = 0;
    for (const mac::PacketTrace::Entry &e : res.trace->entries()) {
        if (e.event != mac::PacketEvent::Ack &&
            e.event != mac::PacketEvent::Expire)
            continue;
        ++terminal;
        EXPECT_GE(e.arg0, 1) << "attempts consumed";
        auto it = last_done.find(e.user);
        if (it != last_done.end()) {
            ASSERT_GT(e.seq, it->second)
                << "user " << e.user
                << ": deliveries must leave in arrival order";
        }
        last_done[e.user] = e.seq;
    }
    EXPECT_EQ(terminal,
              res.aggregate.delivered + res.aggregate.dropped)
        << "every packet terminates exactly once";
}

TEST(Queues, QdiscAndControlKeysRoundTripThroughConfig)
{
    NetworkSpec s = networkPreset("grid-3x3");
    s.traffic.qdisc = mac::QdiscKind::DropHead;
    s.traffic.controlRate = 0.125;
    s.scheduler.contention = mac::ContentionMode::Fixed;
    s.trace = true;
    NetworkSpec t = NetworkSpec::fromConfig(s.toConfig());
    EXPECT_EQ(t.traffic.qdisc, mac::QdiscKind::DropHead);
    EXPECT_DOUBLE_EQ(t.traffic.controlRate, 0.125);
    EXPECT_EQ(t.scheduler.contention, mac::ContentionMode::Fixed);
    EXPECT_TRUE(t.trace);
}
