/**
 * @file
 * Multi-user network simulator tests: the AR(1) fading process is
 * replayable and Doppler-parameterized, NetworkSpec round-trips
 * through li::Config, and -- the acceptance bar -- a 16-user sweep
 * is bit-identical at 1, 2 and 8 worker threads with per-user
 * goodput/latency statistics exposed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "channel/fading.hh"
#include "sim/network_sim.hh"

using namespace wilis;
using namespace wilis::sim;

// ---------------------------------------------------- AR(1) fading

TEST(Ar1Fading, GainSequenceIsReplayable)
{
    channel::Ar1FadingChannel a(10.0, 30.0, 2000.0, 42);
    channel::Ar1FadingChannel b(10.0, 30.0, 2000.0, 42);

    // Forward, backward and repeated queries all agree between
    // instances (the gain is a pure function of (seed, slot)).
    for (std::uint64_t n : {0ull, 3ull, 7ull, 2ull, 7ull, 0ull})
        EXPECT_EQ(a.gain(n, 0), b.gain(n, 0)) << "slot " << n;

    channel::Ar1FadingChannel c(10.0, 30.0, 2000.0, 43);
    EXPECT_NE(a.gain(5, 0), c.gain(5, 0))
        << "different seeds, different fading";
}

TEST(Ar1Fading, BlockFadingHoldsGainWithinASlot)
{
    channel::Ar1FadingChannel chan(10.0, 30.0, 2000.0, 7);
    EXPECT_EQ(chan.gain(4, 0), chan.gain(4, 13));
    EXPECT_NE(chan.gain(4, 0), chan.gain(5, 0));
}

TEST(Ar1Fading, DopplerControlsCorrelation)
{
    // rho = J0(2 pi fd T): slow fading is heavily correlated, fast
    // fading decorrelates.
    channel::Ar1FadingChannel slow(10.0, 5.0, 2000.0, 1);
    channel::Ar1FadingChannel fast(10.0, 200.0, 2000.0, 1);
    EXPECT_GT(slow.rho(), 0.99);
    EXPECT_LT(fast.rho(), slow.rho());
    EXPECT_GE(fast.rho(), 0.0);
    EXPECT_LT(slow.rho(), 1.0);

    // Unit mean power: E[|h|^2] ~ 1 over a long stretch.
    double acc = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        acc += std::norm(fast.gain(static_cast<std::uint64_t>(i), 0));
    EXPECT_NEAR(acc / n, 1.0, 0.15);
}

// ----------------------------------------------------- NetworkSpec

TEST(NetworkSpec, ConfigRoundTrips)
{
    NetworkSpec s;
    s.name = "rt";
    s.numUsers = 5;
    s.arrivalModel = "bernoulli";
    s.arrivalProb = 0.25;
    s.dopplerHz = 77.0;
    s.snrSpreadDb = 4.0;
    s.frameIntervalUs = 1500.0;
    s.arqMode = mac::ArqMode::StopAndWait;
    s.arqWindow = 3;
    s.arqMaxAttempts = 5;
    s.ackDelaySlots = 2;
    s.pberLo = 1e-7;
    s.pberHi = 1e-3;
    s.seed = 0xFEEDull;
    s.link.rate = 3;
    s.link.payloadBits = 640;

    NetworkSpec t = NetworkSpec::fromConfig(s.toConfig());
    EXPECT_EQ(t.name, s.name);
    EXPECT_EQ(t.numUsers, s.numUsers);
    EXPECT_EQ(t.arrivalModel, s.arrivalModel);
    EXPECT_DOUBLE_EQ(t.arrivalProb, s.arrivalProb);
    EXPECT_DOUBLE_EQ(t.dopplerHz, s.dopplerHz);
    EXPECT_DOUBLE_EQ(t.snrSpreadDb, s.snrSpreadDb);
    EXPECT_DOUBLE_EQ(t.frameIntervalUs, s.frameIntervalUs);
    EXPECT_EQ(t.arqMode, s.arqMode);
    EXPECT_EQ(t.arqWindow, s.arqWindow);
    EXPECT_EQ(t.arqMaxAttempts, s.arqMaxAttempts);
    EXPECT_EQ(t.ackDelaySlots, s.ackDelaySlots);
    EXPECT_DOUBLE_EQ(t.pberLo, s.pberLo);
    EXPECT_DOUBLE_EQ(t.pberHi, s.pberHi);
    EXPECT_EQ(t.seed, s.seed);
    EXPECT_EQ(t.link.rate, s.link.rate);
    EXPECT_EQ(t.link.payloadBits, s.link.payloadBits);
}

TEST(NetworkSpec, PresetsAreRegistered)
{
    for (const char *name :
         {"cell-16", "cell-dense", "cell-mobile", "cell-stopwait"})
        EXPECT_TRUE(hasNetworkPreset(name)) << name;
    NetworkSpec dense = networkPreset("cell-dense");
    EXPECT_EQ(dense.numUsers, 64);
    EXPECT_EQ(dense.arrivalModel, "bernoulli");
    NetworkSpec sw = networkPreset("cell-stopwait");
    EXPECT_EQ(sw.arqMode, mac::ArqMode::StopAndWait);
}

TEST(NetworkSpec, ShorthandKeysReachTheLinkTemplate)
{
    NetworkSpec s = NetworkSpec::fromConfig(li::Config::fromString(
        "users=4,rate=5,snr_db=21,payload_bits=256,arq=stopwait"));
    EXPECT_EQ(s.numUsers, 4);
    EXPECT_EQ(s.link.rate, 5);
    EXPECT_DOUBLE_EQ(s.link.snrDb(), 21.0);
    EXPECT_EQ(s.link.payloadBits, 256u);
    EXPECT_EQ(s.arqMode, mac::ArqMode::StopAndWait);
}

// ------------------------------------------------------ NetworkSim

namespace {

NetworkSpec
testCell(int users)
{
    NetworkSpec s = networkPreset("cell-16");
    s.numUsers = users;
    s.link.payloadBits = 400; // keep the PHY cost test-sized
    s.dopplerHz = 60.0;
    s.snrSpreadDb = 8.0;
    s.seed = 0xBEEF;
    return s;
}

void
expectSameStats(const UserStats &a, const UserStats &b, int user)
{
    EXPECT_EQ(a.framesSent, b.framesSent) << "user " << user;
    EXPECT_EQ(a.framesOk, b.framesOk) << "user " << user;
    EXPECT_EQ(a.stalledSlots, b.stalledSlots) << "user " << user;
    EXPECT_EQ(a.retransmissions, b.retransmissions)
        << "user " << user;
    EXPECT_EQ(a.delivered, b.delivered) << "user " << user;
    EXPECT_EQ(a.dropped, b.dropped) << "user " << user;
    EXPECT_EQ(a.goodputBits, b.goodputBits) << "user " << user;
    EXPECT_EQ(a.latencySlots.count(), b.latencySlots.count())
        << "user " << user;
    // Per-user statistics accumulate sequentially on one worker, so
    // even the floating-point moments are bit-identical.
    EXPECT_EQ(a.latencySlots.mean(), b.latencySlots.mean())
        << "user " << user;
    EXPECT_EQ(a.latencySlots.variance(), b.latencySlots.variance())
        << "user " << user;
    EXPECT_DOUBLE_EQ(a.snrOffsetDb, b.snrOffsetDb) << "user " << user;
    for (int bin = 0; bin < a.latencyHist.numBins(); ++bin)
        EXPECT_EQ(a.latencyHist.count(bin), b.latencyHist.count(bin))
            << "user " << user << " latency bin " << bin;
    for (int bin = 0; bin < a.rateHist.numBins(); ++bin)
        EXPECT_EQ(a.rateHist.count(bin), b.rateHist.count(bin))
            << "user " << user << " rate bin " << bin;
    for (int bin = 0; bin < a.attemptsHist.numBins(); ++bin)
        EXPECT_EQ(a.attemptsHist.count(bin),
                  b.attemptsHist.count(bin))
            << "user " << user << " attempts bin " << bin;
}

} // namespace

TEST(NetworkSim, SixteenUserSweepBitIdenticalAt1_2_8Threads)
{
    const std::uint64_t slots = 40;
    NetworkSpec spec = testCell(16);

    NetworkSim sim(spec);
    NetworkResult t1 = sim.run(slots, 1);
    NetworkResult t2 = sim.run(slots, 2);
    NetworkResult t8 = sim.run(slots, 8);

    ASSERT_EQ(t1.users.size(), 16u);
    ASSERT_EQ(t2.users.size(), 16u);
    ASSERT_EQ(t8.users.size(), 16u);
    for (int u = 0; u < 16; ++u) {
        expectSameStats(t1.users[static_cast<size_t>(u)],
                        t2.users[static_cast<size_t>(u)], u);
        expectSameStats(t1.users[static_cast<size_t>(u)],
                        t8.users[static_cast<size_t>(u)], u);
    }
    expectSameStats(t1.aggregate, t2.aggregate, -1);
    expectSameStats(t1.aggregate, t8.aggregate, -1);

    // Per-user goodput and latency statistics are exposed and
    // populated: every full-buffer user transmits every slot and
    // delivers most of its frames.
    for (const UserStats &u : t1.users) {
        EXPECT_EQ(u.framesSent + u.stalledSlots, slots);
        EXPECT_GT(u.delivered, 0u);
        EXPECT_GT(u.goodputBits, 0u);
        EXPECT_GT(u.goodputMbps(slots, spec.frameIntervalUs), 0.0);
        EXPECT_EQ(u.latencySlots.count(), u.delivered);
        EXPECT_EQ(u.latencyHist.total(), u.delivered);
        EXPECT_EQ(u.rateHist.total(), u.framesSent);
    }
    // The near/far SNR spread differentiates users.
    EXPECT_NE(t1.users[0].snrOffsetDb, t1.users[1].snrOffsetDb);
    // Aggregate bookkeeping is the exact user sum.
    std::uint64_t goodput = 0;
    for (const UserStats &u : t1.users)
        goodput += u.goodputBits;
    EXPECT_EQ(t1.aggregate.goodputBits, goodput);
    EXPECT_GT(t1.aggregateGoodputMbps(), 0.0);
}

TEST(NetworkSim, PerUserSpecsDeriveDistinctSeeds)
{
    NetworkSim sim(testCell(4));
    ScenarioSpec u0 = sim.userLinkSpec(0);
    ScenarioSpec u1 = sim.userLinkSpec(1);
    EXPECT_EQ(u0.channel, "ar1");
    EXPECT_NE(u0.payloadSeed, u1.payloadSeed);
    EXPECT_NE(u0.channelCfg.getString("seed"),
              u1.channelCfg.getString("seed"));
    EXPECT_NE(u0.channelCfg.getString("snr_db"),
              u1.channelCfg.getString("snr_db"));
    EXPECT_DOUBLE_EQ(u0.channelCfg.getDouble("doppler_hz"), 60.0);
}

TEST(NetworkSim, SelectiveRepeatOutperformsStopAndWait)
{
    // At a 2-slot ack delay, stop-and-wait can use at most every
    // other slot while selective repeat keeps the pipe full; on a
    // clean channel the goodput gap must show.
    NetworkSpec sr = testCell(4);
    sr.snrSpreadDb = 0.0;
    sr.link.channelCfg = li::Config::fromString("snr_db=30");
    sr.dopplerHz = 5.0;
    sr.ackDelaySlots = 2;
    sr.arqMode = mac::ArqMode::SelectiveRepeat;

    NetworkSpec sw = sr;
    sw.arqMode = mac::ArqMode::StopAndWait;

    NetworkResult r_sr = NetworkSim(sr).run(30, 2);
    NetworkResult r_sw = NetworkSim(sw).run(30, 2);
    EXPECT_GT(r_sr.aggregate.goodputBits,
              r_sw.aggregate.goodputBits);
    EXPECT_GT(r_sw.aggregate.stalledSlots, 0u)
        << "stop-and-wait must idle while acks are in flight";
}

TEST(NetworkSim, BernoulliArrivalsThinTheTraffic)
{
    NetworkSpec full = testCell(4);
    NetworkSpec thin = full;
    thin.arrivalModel = "bernoulli";
    thin.arrivalProb = 0.3;

    const std::uint64_t slots = 30;
    NetworkResult r_full = NetworkSim(full).run(slots, 2);
    NetworkResult r_thin = NetworkSim(thin).run(slots, 2);
    EXPECT_EQ(r_full.aggregate.framesSent +
                  r_full.aggregate.stalledSlots,
              slots * 4);
    EXPECT_LT(r_thin.aggregate.framesSent,
              r_full.aggregate.framesSent / 2);
    EXPECT_GT(r_thin.aggregate.framesSent, 0u);
}

TEST(NetworkSim, RateAdaptationReactsToTheSnrSpread)
{
    // With an 8 dB near/far spread, strong and weak users must not
    // end up with the same rate usage: the aggregate rate histogram
    // has to cover more than one rate.
    NetworkSpec spec = testCell(8);
    NetworkResult r = NetworkSim(spec).run(40, 2);
    int rates_used = 0;
    for (int b = 0; b < r.aggregate.rateHist.numBins(); ++b)
        rates_used += r.aggregate.rateHist.count(b) > 0 ? 1 : 0;
    EXPECT_GT(rates_used, 1);
}
