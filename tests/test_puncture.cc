/**
 * @file
 * Puncturer unit tests: 802.11a puncture patterns, length
 * bookkeeping, and erasure placement on depuncture.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "phy/puncture.hh"

using namespace wilis;
using namespace wilis::phy;

TEST(Puncture, RateHalfIsIdentity)
{
    Puncturer p(CodeRate::R12);
    SplitMix64 rng(3);
    BitVec coded(96);
    for (auto &b : coded)
        b = rng.nextBit();
    EXPECT_EQ(p.puncture(coded), coded);
    EXPECT_EQ(p.puncturedLength(96), 96u);
    EXPECT_EQ(p.unpuncturedLength(96), 96u);
}

TEST(Puncture, RateTwoThirdsPattern)
{
    // Keep A1 B1 A2, drop B2 over each 4-bit period.
    Puncturer p(CodeRate::R23);
    BitVec coded = {0, 1, 0, 1, /* A1 B1 A2 B2 */
                    1, 0, 1, 0};
    BitVec out = p.puncture(coded);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], coded[0]); // A1
    EXPECT_EQ(out[1], coded[1]); // B1
    EXPECT_EQ(out[2], coded[2]); // A2
    EXPECT_EQ(out[3], coded[4]); // next period A1
    EXPECT_EQ(out[4], coded[5]);
    EXPECT_EQ(out[5], coded[6]);
}

TEST(Puncture, RateThreeQuartersPattern)
{
    // Keep A1 B1 A2 B3, drop B2 A3 over each 6-bit period.
    Puncturer p(CodeRate::R34);
    BitVec coded = {1, 0, 1, 1, 0, 1, /* A1 B1 A2 B2 A3 B3 */
                    0, 1, 0, 0, 1, 0};
    BitVec out = p.puncture(coded);
    ASSERT_EQ(out.size(), 8u);
    EXPECT_EQ(out[0], coded[0]); // A1
    EXPECT_EQ(out[1], coded[1]); // B1
    EXPECT_EQ(out[2], coded[2]); // A2
    EXPECT_EQ(out[3], coded[5]); // B3
    EXPECT_EQ(out[4], coded[6]);
    EXPECT_EQ(out[5], coded[7]);
    EXPECT_EQ(out[6], coded[8]);
    EXPECT_EQ(out[7], coded[11]);
}

TEST(Puncture, LengthAccounting)
{
    Puncturer p23(CodeRate::R23);
    EXPECT_EQ(p23.puncturedLength(384), 288u);
    EXPECT_EQ(p23.unpuncturedLength(288), 384u);

    Puncturer p34(CodeRate::R34);
    EXPECT_EQ(p34.puncturedLength(432), 288u);
    EXPECT_EQ(p34.unpuncturedLength(288), 432u);
}

TEST(Puncture, DepunctureInsertsErasuresAtDroppedPositions)
{
    Puncturer p(CodeRate::R34);
    SoftVec rx = {10, -20, 30, -40, 50, 60, -70, 80};
    SoftVec full = p.depuncture(rx);
    ASSERT_EQ(full.size(), 12u);
    // Period 1: A1 B1 A2 [B2=0] [A3=0] B3
    EXPECT_EQ(full[0], 10);
    EXPECT_EQ(full[1], -20);
    EXPECT_EQ(full[2], 30);
    EXPECT_EQ(full[3], 0);
    EXPECT_EQ(full[4], 0);
    EXPECT_EQ(full[5], -40);
    // Period 2.
    EXPECT_EQ(full[6], 50);
    EXPECT_EQ(full[7], 60);
    EXPECT_EQ(full[8], -70);
    EXPECT_EQ(full[9], 0);
    EXPECT_EQ(full[10], 0);
    EXPECT_EQ(full[11], 80);
}

class PunctureRoundTrip : public ::testing::TestWithParam<CodeRate>
{};

INSTANTIATE_TEST_SUITE_P(AllRates, PunctureRoundTrip,
                         ::testing::Values(CodeRate::R12, CodeRate::R23,
                                           CodeRate::R34));

TEST_P(PunctureRoundTrip, SurvivingPositionsRoundTrip)
{
    Puncturer p(GetParam());
    SplitMix64 rng(11);
    BitVec coded(144);
    for (auto &b : coded)
        b = rng.nextBit();

    BitVec punct = p.puncture(coded);
    SoftVec soft(punct.size());
    for (size_t i = 0; i < punct.size(); ++i)
        soft[i] = punct[i] ? 5 : -5;
    SoftVec full = p.depuncture(soft);
    ASSERT_EQ(full.size(), coded.size());
    for (size_t i = 0; i < full.size(); ++i) {
        if (full[i] != 0) {
            EXPECT_EQ(full[i] > 0 ? 1 : 0, coded[i]) << "pos " << i;
        }
    }
}
