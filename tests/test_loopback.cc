/**
 * @file
 * Integration tests: full transmitter -> receiver loopback over a
 * noiseless channel must be exact for every rate, decoder, and a
 * range of payload sizes; moderate-SNR AWGN must decode with low
 * BER; high SNR must be error-free.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"
#include "sim/sweep.hh"
#include "sim/testbench.hh"

using namespace wilis;
using namespace wilis::phy;
using namespace wilis::sim;

class LoopbackAllRates
    : public ::testing::TestWithParam<std::tuple<int, const char *>>
{};

INSTANTIATE_TEST_SUITE_P(
    RatesAndDecoders, LoopbackAllRates,
    ::testing::Combine(::testing::Range(0, kNumRates),
                       ::testing::Values("viterbi", "sova", "bcjr")));

TEST_P(LoopbackAllRates, NoiselessLoopbackIsExact)
{
    auto [rate, decoder] = GetParam();
    OfdmTransmitter tx(rate);
    OfdmReceiver::Config rxc;
    rxc.decoder = decoder;
    OfdmReceiver rx(rate, rxc);

    for (size_t payload : {100u, 1704u}) {
        SplitMix64 rng(static_cast<std::uint64_t>(rate) * 131 +
                       payload);
        BitVec data(payload);
        for (auto &b : data)
            b = rng.nextBit();
        SampleVec samples = tx.modulate(data);
        EXPECT_EQ(samples.size(), tx.numSamples(payload));
        RxResult res = rx.demodulate(samples, payload);
        EXPECT_EQ(res.bitErrors(data), 0u)
            << rateTable(rate).name() << " " << decoder << " payload "
            << payload;
    }
}

TEST(Loopback, FrameGeometry)
{
    // QAM16 1/2: N_DBPS = 96. A 1704-bit payload (the Figure 6 size)
    // plus 6 tail bits needs ceil(1710/96) = 18 symbols.
    OfdmTransmitter tx(4);
    EXPECT_EQ(tx.numSymbols(1704), 18);
    EXPECT_EQ(tx.paddedInfoBits(1704), 18u * 96u - 6u);
    EXPECT_EQ(tx.numSamples(1704), 18u * 80u);

    // BPSK 1/2: N_DBPS = 24; 100 bits + 6 tail -> 5 symbols.
    OfdmTransmitter tx0(0);
    EXPECT_EQ(tx0.numSymbols(100), 5);
}

TEST(Loopback, OddPayloadSizes)
{
    OfdmTransmitter tx(2);
    OfdmReceiver rx(2);
    for (size_t payload : {1u, 7u, 95u, 96u, 97u, 1001u}) {
        SplitMix64 rng(payload);
        BitVec data(payload);
        for (auto &b : data)
            b = rng.nextBit();
        SampleVec s = tx.modulate(data);
        EXPECT_EQ(rx.demodulate(s, payload).bitErrors(data), 0u)
            << "payload " << payload;
    }
}

TEST(Loopback, HighSnrAwgnIsErrorFree)
{
    for (int rate : {0, 4, 7}) {
        TestbenchConfig cfg;
        cfg.rate = rate;
        cfg.rx.decoder = "bcjr";
        cfg.channelCfg = li::Config::fromString("snr_db=35,seed=2");
        Testbench tb(cfg);
        for (std::uint64_t p = 0; p < 5; ++p) {
            PacketResult res = tb.runPacket(1704, p);
            EXPECT_TRUE(res.ok) << "rate " << rate << " packet " << p;
        }
    }
}

TEST(Loopback, ModerateSnrDecodesWithLowBer)
{
    // QPSK 1/2 at 7 dB: raw channel BER ~ 1e-2, decoded BER < 1e-4.
    TestbenchConfig cfg;
    cfg.rate = 2;
    cfg.rx.decoder = "bcjr";
    cfg.channelCfg = li::Config::fromString("snr_db=7,seed=5");
    ErrorStats s = measureBer(ScenarioSpec::fromTestbench(cfg, 1000), 40, 2);
    EXPECT_EQ(s.bits, 40000u);
    EXPECT_LT(s.ber(), 1e-3);
}

TEST(Loopback, LowSnrProducesErrors)
{
    TestbenchConfig cfg;
    cfg.rate = 7; // QAM64 3/4 is fragile
    cfg.rx.decoder = "viterbi";
    cfg.channelCfg = li::Config::fromString("snr_db=5,seed=5");
    ErrorStats s = measureBer(ScenarioSpec::fromTestbench(cfg, 1000), 10, 2);
    EXPECT_GT(s.ber(), 1e-2);
}

TEST(Loopback, SweepIsThreadCountInvariant)
{
    TestbenchConfig cfg;
    cfg.rate = 4;
    cfg.rx.decoder = "sova";
    cfg.channelCfg = li::Config::fromString("snr_db=9,seed=11");
    ErrorStats a = measureBer(ScenarioSpec::fromTestbench(cfg, 800), 16, 1);
    ErrorStats b = measureBer(ScenarioSpec::fromTestbench(cfg, 800), 16, 4);
    EXPECT_EQ(a.bits, b.bits);
    EXPECT_EQ(a.errors, b.errors);
}

TEST(Loopback, FadingChannelEqualizationWorks)
{
    TestbenchConfig cfg;
    cfg.rate = 2;
    cfg.rx.decoder = "bcjr";
    cfg.channel = "rayleigh";
    cfg.channelCfg =
        li::Config::fromString("snr_db=40,doppler_hz=20,seed=9");
    Testbench tb(cfg);
    int ok = 0;
    for (std::uint64_t p = 0; p < 20; ++p)
        ok += tb.runPacket(500, p).ok;
    // With essentially no noise, only deep fades could hurt, and at
    // 40 dB mean SNR nearly all packets survive.
    EXPECT_GE(ok, 18);
}
