/**
 * @file
 * Isolation tests for the two MAC building blocks the network
 * simulator composes: the SoftRate controller (previously only
 * exercised through the Figure 7 experiment) and the sequence-number
 * ARQ state machine. SoftRate must converge on a step-change SNR
 * trace; the ARQ must deliver in order under forced frame loss in
 * both stop-and-wait and selective-repeat modes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "mac/arq.hh"
#include "mac/softrate.hh"

using namespace wilis;
using mac::Arq;
using mac::ArqMode;

namespace {

/**
 * Synthetic per-packet BER model for a rate at a given SNR: each
 * rate needs ~3 dB more SNR per step, with a steep waterfall.
 * Monotonic in both arguments, which is all the controller relies
 * on.
 */
double
syntheticPber(int rate, double snr_db)
{
    double margin_db = snr_db - 3.0 * rate;
    return std::min(0.5, std::pow(10.0, -margin_db));
}

/** Drive the controller for @p steps packets at a fixed SNR. */
phy::RateIndex
settle(mac::SoftRateMac &ctl, double snr_db, int steps)
{
    phy::RateIndex r = ctl.currentRate();
    for (int i = 0; i < steps; ++i)
        r = ctl.onFeedback(syntheticPber(ctl.currentRate(), snr_db));
    return r;
}

} // namespace

TEST(SoftRate, ConvergesOnStepChangeSnrTrace)
{
    mac::SoftRateMac::Config cfg;
    cfg.pberLo = 1e-6;
    cfg.pberHi = 1e-4;
    cfg.initialRate = 4;
    mac::SoftRateMac ctl(cfg);

    // High SNR: the controller climbs until the operating range
    // holds; with the synthetic model every rate is clean at 25 dB.
    phy::RateIndex high = settle(ctl, 25.0, 20);
    EXPECT_EQ(high, phy::kNumRates - 1);

    // Step down to 8 dB: rates above ~2 now blow through pberHi, so
    // the controller must descend and settle without oscillating.
    phy::RateIndex low = settle(ctl, 8.0, 20);
    EXPECT_LT(low, 4);
    phy::RateIndex settled = low;
    for (int i = 0; i < 10; ++i) {
        phy::RateIndex r =
            ctl.onFeedback(syntheticPber(ctl.currentRate(), 8.0));
        EXPECT_LE(std::abs(r - settled), 1) << "oscillation";
    }

    // Step back up: re-converges to the top.
    EXPECT_EQ(settle(ctl, 25.0, 20), phy::kNumRates - 1);
}

TEST(SoftRate, StaysPutInsideOperatingRange)
{
    mac::SoftRateMac::Config cfg;
    cfg.pberLo = 1e-6;
    cfg.pberHi = 1e-4;
    cfg.initialRate = 3;
    mac::SoftRateMac ctl(cfg);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ctl.onFeedback(1e-5), 3);
    ctl.reset();
    EXPECT_EQ(ctl.currentRate(), 3);
}

TEST(SoftRate, ClampsAtRateTableEdges)
{
    mac::SoftRateMac ctl; // default: initial rate 0
    EXPECT_EQ(ctl.onFeedback(1.0), 0) << "cannot go below rate 0";
    for (int i = 0; i < 2 * phy::kNumRates; ++i)
        ctl.onFeedback(0.0);
    EXPECT_EQ(ctl.currentRate(), phy::kNumRates - 1);
    EXPECT_EQ(ctl.onFeedback(0.0), phy::kNumRates - 1)
        << "cannot go above the top rate";
}

namespace {

/**
 * Drive an Arq over @p slots with decode outcomes supplied by
 * @p decide(seq, attempt) (attempt is 1-based); returns the
 * deliveries in emission order.
 */
std::vector<Arq::Delivery>
driveArq(Arq &arq, std::uint64_t slots,
         const std::function<bool(std::uint64_t, int)> &decide)
{
    std::vector<Arq::Delivery> out;
    std::vector<int> attempts;
    for (std::uint64_t t = 0; t < slots; ++t) {
        arq.tick(t, out);
        std::uint64_t seq = 0;
        if (!arq.nextToSend(t, seq))
            continue;
        if (attempts.size() <= seq)
            attempts.resize(static_cast<size_t>(seq) + 1, 0);
        int attempt = ++attempts[static_cast<size_t>(seq)];
        arq.onSendResult(seq, decide(seq, attempt));
    }
    // Drain the horizon.
    for (std::uint64_t t = slots; t <= slots + 8; ++t)
        arq.tick(t, out);
    return out;
}

bool
inSequenceOrder(const std::vector<Arq::Delivery> &ds)
{
    for (size_t i = 0; i < ds.size(); ++i)
        if (ds[i].seq != i)
            return false;
    return true;
}

} // namespace

TEST(Arq, StopAndWaitCleanChannelDeliversEverySlot)
{
    Arq::Config cfg;
    cfg.mode = ArqMode::StopAndWait;
    cfg.ackDelaySlots = 1;
    Arq arq(cfg);
    EXPECT_EQ(arq.windowSize(), 1);

    auto ds = driveArq(arq, 20, [](std::uint64_t, int) {
        return true;
    });
    ASSERT_EQ(ds.size(), 20u);
    EXPECT_TRUE(inSequenceOrder(ds));
    for (const auto &d : ds) {
        EXPECT_EQ(d.attempts, 1);
        EXPECT_EQ(d.latencySlots, 1u);
        EXPECT_FALSE(d.dropped);
    }
    EXPECT_EQ(arq.retransmissions(), 0u);
}

TEST(Arq, StopAndWaitRetransmitsUntilClean)
{
    Arq::Config cfg;
    cfg.mode = ArqMode::StopAndWait;
    cfg.ackDelaySlots = 1;
    Arq arq(cfg);

    // Every third frame fails on its first two attempts.
    auto ds = driveArq(arq, 40, [](std::uint64_t seq, int attempt) {
        return seq % 3 != 0 || attempt > 2;
    });
    ASSERT_GT(ds.size(), 6u);
    EXPECT_TRUE(inSequenceOrder(ds));
    for (const auto &d : ds) {
        EXPECT_FALSE(d.dropped);
        if (d.seq % 3 == 0) {
            EXPECT_EQ(d.attempts, 3);
            EXPECT_EQ(d.latencySlots, 3u);
        } else {
            EXPECT_EQ(d.attempts, 1);
            EXPECT_EQ(d.latencySlots, 1u);
        }
    }
    EXPECT_EQ(arq.retransmissions(),
              2 * ((ds.back().seq / 3) + 1));
}

TEST(Arq, StopAndWaitIdlesWhileAckIsInFlight)
{
    Arq::Config cfg;
    cfg.mode = ArqMode::StopAndWait;
    cfg.ackDelaySlots = 3;
    Arq arq(cfg);

    auto ds = driveArq(arq, 30, [](std::uint64_t, int) {
        return true;
    });
    // One frame per (1 + ackDelay - 1) = 3 slots.
    EXPECT_EQ(ds.size(), 10u);
    EXPECT_TRUE(inSequenceOrder(ds));
}

TEST(Arq, SelectiveRepeatFillsThePipe)
{
    Arq::Config cfg;
    cfg.mode = ArqMode::SelectiveRepeat;
    cfg.window = 8;
    cfg.ackDelaySlots = 3;
    Arq arq(cfg);

    auto ds = driveArq(arq, 30, [](std::uint64_t, int) {
        return true;
    });
    // Unlike stop-and-wait at the same ack delay, every slot carries
    // a (new) frame.
    EXPECT_EQ(ds.size(), 30u);
    EXPECT_TRUE(inSequenceOrder(ds));
    for (const auto &d : ds)
        EXPECT_EQ(d.latencySlots, 3u);
}

TEST(Arq, SelectiveRepeatDeliversInOrderUnderForcedLoss)
{
    Arq::Config cfg;
    cfg.mode = ArqMode::SelectiveRepeat;
    cfg.window = 4;
    cfg.ackDelaySlots = 2;
    Arq arq(cfg);

    // Deterministic loss: every fourth frame needs two attempts.
    auto ds = driveArq(arq, 60, [](std::uint64_t seq, int attempt) {
        return seq % 4 != 1 || attempt >= 2;
    });
    ASSERT_GT(ds.size(), 20u);
    EXPECT_TRUE(inSequenceOrder(ds)) << "selective repeat must "
                                        "buffer out-of-order "
                                        "successes";
    for (const auto &d : ds) {
        EXPECT_FALSE(d.dropped);
        EXPECT_EQ(d.attempts, d.seq % 4 == 1 ? 2 : 1);
        // Frames behind a retransmission inherit queueing latency,
        // so only a lower bound is universal.
        EXPECT_GE(d.latencySlots, 2u);
    }
    EXPECT_GT(arq.retransmissions(), 0u);
}

TEST(Arq, DropsAfterRetryBudgetAndMovesOn)
{
    Arq::Config cfg;
    cfg.mode = ArqMode::SelectiveRepeat;
    cfg.window = 4;
    cfg.maxAttempts = 3;
    cfg.ackDelaySlots = 1;
    Arq arq(cfg);

    // Frame 2 never decodes; everything else is clean.
    auto ds = driveArq(arq, 40, [](std::uint64_t seq, int) {
        return seq != 2;
    });
    ASSERT_GT(ds.size(), 5u);
    EXPECT_TRUE(inSequenceOrder(ds));
    for (const auto &d : ds) {
        if (d.seq == 2) {
            EXPECT_TRUE(d.dropped);
            EXPECT_EQ(d.attempts, 3);
        } else {
            EXPECT_FALSE(d.dropped);
        }
    }
}

TEST(Arq, ImmediateFeedbackMode)
{
    Arq::Config cfg;
    cfg.mode = ArqMode::StopAndWait;
    cfg.ackDelaySlots = 0;
    Arq arq(cfg);

    auto ds = driveArq(arq, 10, [](std::uint64_t seq, int) {
        return seq != 0;
    });
    // seq 0 retransmits until... it never succeeds? decide says
    // seq != 0 -> seq 0 always fails; budget 8 -> dropped, rest ok.
    ASSERT_GT(ds.size(), 2u);
    EXPECT_TRUE(inSequenceOrder(ds));
    EXPECT_TRUE(ds[0].dropped);
    EXPECT_EQ(ds[0].attempts, 8);
    EXPECT_FALSE(ds[1].dropped);
}

TEST(ArqModeNames, RoundTrip)
{
    EXPECT_EQ(mac::arqModeFromName("stopwait"),
              ArqMode::StopAndWait);
    EXPECT_EQ(mac::arqModeFromName("selective"),
              ArqMode::SelectiveRepeat);
    EXPECT_STREQ(mac::arqModeName(ArqMode::StopAndWait), "stopwait");
    EXPECT_STREQ(mac::arqModeName(ArqMode::SelectiveRepeat),
                 "selective");
}
