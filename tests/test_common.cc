/**
 * @file
 * Tests for the shared utilities: printf-style formatting, the text
 * table renderer, the worker pool, and the logging death paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

using namespace wilis;

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(strprintf("%.3f", 1.5), "1.500");
    EXPECT_EQ(strprintf("%5d|", 7), "    7|");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Strprintf, LongStringsSurvive)
{
    std::string big(5000, 'q');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "long header", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"wide cell", "x", "y"});
    std::string out = t.render();

    // Header, separator, two rows.
    int lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 4);

    // Every data line starts at the same column for field 2.
    size_t h = out.find("long header");
    size_t r1 = out.find("2");
    EXPECT_NE(h, std::string::npos);
    EXPECT_NE(r1, std::string::npos);
}

TEST(TableDeath, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "cells");
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(257, [&](std::uint64_t i) {
        hits[static_cast<size_t>(i)]++;
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    for (int round = 0; round < 5; ++round) {
        sum = 0;
        pool.parallelFor(100, [&](std::uint64_t i) {
            sum += static_cast<long>(i);
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ThreadPool, ZeroChunksIsNoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::uint64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadStillWorks)
{
    ThreadPool pool(1);
    std::atomic<int> n{0};
    pool.parallelFor(10, [&](std::uint64_t) { n++; });
    EXPECT_EQ(n.load(), 10);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(wilis_panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(wilis_fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LoggingDeath, AssertMessageIncludesCondition)
{
    EXPECT_DEATH(wilis_assert(1 == 2, "context %d", 5),
                 "assertion '1 == 2' failed");
}
