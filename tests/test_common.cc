/**
 * @file
 * Tests for the shared utilities: printf-style formatting, the text
 * table renderer, the worker pool, and the logging death paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

using namespace wilis;

TEST(RunningStats, SampleVarianceConvention)
{
    // The n-1 (Bessel) convention, matching the n > 1 gate: {1,2,3}
    // has sample variance exactly 1 (population form would say 2/3).
    RunningStats st;
    st.add(1.0);
    st.add(2.0);
    st.add(3.0);
    EXPECT_EQ(st.count(), 3u);
    EXPECT_DOUBLE_EQ(st.mean(), 2.0);
    EXPECT_DOUBLE_EQ(st.variance(), 1.0);
    EXPECT_DOUBLE_EQ(st.stddev(), 1.0);

    // Degenerate counts stay gated to 0.
    RunningStats one;
    one.add(5.0);
    EXPECT_EQ(one.variance(), 0.0);
    EXPECT_EQ(RunningStats().variance(), 0.0);
}

TEST(RunningStats, LargeMeanSmallSpreadDoesNotCancel)
{
    // Raw sum-of-squares accumulation would lose every significant
    // digit here (sum_sq ~ n*1e16 against a unit spread) and report
    // variance 0; the offset-shifted moments must not.
    RunningStats st;
    for (int i = 0; i < 2000; ++i)
        st.add(1.0e8 + static_cast<double>(i % 2));
    EXPECT_NEAR(st.mean(), 1.0e8 + 0.5, 1e-6);
    EXPECT_NEAR(st.variance(), 0.25, 1e-3);

    // And merging two such shards keeps the spread visible too.
    RunningStats a, b;
    for (int i = 0; i < 1000; ++i) {
        a.add(1.0e8 + static_cast<double>(i % 2));
        b.add(1.0e8 + static_cast<double>((i + 1) % 2));
    }
    a.merge(b);
    EXPECT_NEAR(a.variance(), 0.25, 1e-3);
}

TEST(RunningStats, ShardMergeIsBitEqualToSinglePass)
{
    // The UserStats aggregation pattern: per-user shards accumulate
    // integer-valued latencies sequentially and merge in user order.
    // Integer samples keep every moment sum exact, so the merged
    // mean and variance must be BIT-equal to one single-pass
    // accumulation over the concatenated stream -- not merely close.
    SplitMix64 rng(0x57A75);
    RunningStats whole, shard_a, shard_b;
    for (int i = 0; i < 4096; ++i) {
        double latency_slots =
            static_cast<double>(rng.nextBelow(64)); // integer slots
        whole.add(latency_slots);
        (i < 2048 ? shard_a : shard_b).add(latency_slots);
    }
    shard_a.merge(shard_b);
    EXPECT_EQ(shard_a.count(), whole.count());
    EXPECT_EQ(shard_a.mean(), whole.mean());
    EXPECT_EQ(shard_a.variance(), whole.variance());
    EXPECT_EQ(shard_a.stddev(), whole.stddev());
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(strprintf("%.3f", 1.5), "1.500");
    EXPECT_EQ(strprintf("%5d|", 7), "    7|");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Strprintf, LongStringsSurvive)
{
    std::string big(5000, 'q');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "long header", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"wide cell", "x", "y"});
    std::string out = t.render();

    // Header, separator, two rows.
    int lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 4);

    // Every data line starts at the same column for field 2.
    size_t h = out.find("long header");
    size_t r1 = out.find("2");
    EXPECT_NE(h, std::string::npos);
    EXPECT_NE(r1, std::string::npos);
}

TEST(TableDeath, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "cells");
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(257, [&](std::uint64_t i) {
        hits[static_cast<size_t>(i)]++;
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    for (int round = 0; round < 5; ++round) {
        sum = 0;
        pool.parallelFor(100, [&](std::uint64_t i) {
            sum += static_cast<long>(i);
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ThreadPool, ZeroChunksIsNoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::uint64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadStillWorks)
{
    ThreadPool pool(1);
    std::atomic<int> n{0};
    pool.parallelFor(10, [&](std::uint64_t) { n++; });
    EXPECT_EQ(n.load(), 10);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(wilis_panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(wilis_fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LoggingDeath, AssertMessageIncludesCondition)
{
    EXPECT_DEATH(wilis_assert(1 == 2, "context %d", 5),
                 "assertion '1 == 2' failed");
}
