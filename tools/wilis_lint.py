#!/usr/bin/env python3
"""Repo-specific determinism linter.

Every engine in this repo promises bit-identical output across
thread counts, engines and SIMD backends. That contract dies by a
thousand cuts -- one wall-clock read, one unordered-container walk,
one -ffast-math flag -- so this linter bans the cut classes
statically, in the CI lint job, before any of them can flake a
determinism smoke:

  banned-call        rand()/srand(), std::random_device, time(),
                     clock() and std::chrono::*_clock::now() in
                     src/ (simulation code draws only from the
                     counter RNG; wall time belongs in bench/).
  unordered-container std::unordered_{map,set} in src/sim and
                     src/mac: iteration order is hash-seed and
                     allocation dependent, which is exactly how a
                     per-user loop silently reorders output.
  omp-pragma         #pragma omp in src/: OpenMP scheduling is
                     nondeterministic by default and invisible to
                     the LockstepTeam/ThreadPool determinism story.
  kernel-libm        calls in src/common/kernels_impl.hh to libm
                     functions outside the whitelist documented in
                     that file's `wilis-lint: kernel-libm-whitelist:`
                     directive (the one-call-per-lane bit-exactness
                     policy).
  fast-math-flag     -ffast-math / -funsafe-math-optimizations /
                     -Ofast / -mfma / -ffp-contract=fast in CMake
                     files: contraction and reassociation break the
                     scalar<->SIMD bit-exactness the kernel tests
                     pin.
  undocumented-key   a key present in kScenarioKeys[]/kNetworkKeys[]
                     (src/sim/scenario.cc) but absent from
                     docs/SCENARIOS.md -- the reference must cover
                     the whole accepted surface.

Suppression: a line carrying `wilis-lint: allow(<rule>)` (in a
comment, with a justification) disables that rule for that line;
the justification requirement is policy (docs/ARCHITECTURE.md,
"Static determinism guarantees"), reviewed, not machine-checked.

Usage:
    wilis_lint.py [--root DIR]
    wilis_lint.py --self-test

Exit status: 0 when the tree is clean, 1 on findings (or self-test
failure). Comments and string literals are stripped before rules
run, so prose mentioning rand() or `time(` never trips the gate.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------- util

CODE_SUFFIXES = (".hh", ".cc", ".h", ".cpp")

# libm names worth scanning for in kernel bodies. Integer helpers
# (abs, min, max) are deliberately absent: they are exact.
LIBM_FUNCTIONS = frozenset("""
    sin cos tan asin acos atan atan2 sinh cosh tanh asinh acosh atanh
    exp exp2 expm1 log log2 log10 log1p pow sqrt cbrt hypot
    erf erfc tgamma lgamma fmod remainder fma
    floor ceil round trunc nearbyint rint lround llround
    fabs fdim copysign frexp ldexp scalbn
""".split())


def strip_code(text):
    """Blank out comments and string/char literals, preserving
    newlines (and therefore line numbers) -- except that the
    `wilis-lint:` directives themselves survive, since they live in
    comments on purpose."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                # Keep lint directives visible to the rules.
                m = re.match(r"//.*?(wilis-lint:[^\n]*)", text[i:])
                if m:
                    out.append(" " + m.group(1))
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                m = re.match(r"/\*.*?(wilis-lint:[^\n]*)", text[i:],
                             re.S)
                if m:
                    out.append(" " + m.group(1))
                i += 2
                continue
            if c == '"':
                state = "str"
                i += 1
                continue
            if c == "'":
                state = "chr"
                i += 1
                continue
            out.append(c)
            i += 1
            continue
        if state == "line_comment":
            if c == "\n":
                out.append("\n")
                state = "code"
            i += 1
            continue
        if state == "block_comment":
            if c == "\n":
                out.append("\n")
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        # str / chr
        if c == "\\":
            i += 2
            continue
        if c == "\n":  # unterminated literal; stay line-accurate
            out.append("\n")
            state = "code"
            i += 1
            continue
        if (state == "str" and c == '"') or \
           (state == "chr" and c == "'"):
            state = "code"
        i += 1
    return "".join(out)


def allowed_lines(raw_text, rule):
    """Line numbers (1-based) carrying a suppression for `rule`."""
    allowed = set()
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        if re.search(r"wilis-lint:\s*allow\(%s\)" % re.escape(rule),
                     line):
            allowed.add(lineno)
    return allowed


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.lineno,
                                   self.rule, self.message)


def scan_lines(path, raw_text, rule, patterns):
    """Findings for regex `patterns` ({regex: message}) over the
    stripped text of one file, honoring per-line suppressions."""
    stripped = strip_code(raw_text)
    allowed = allowed_lines(raw_text, rule)
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if lineno in allowed:
            continue
        for pattern, message in patterns.items():
            if re.search(pattern, line):
                findings.append(Finding(path, lineno, rule, message))
    return findings


# -------------------------------------------------------------- rules

BANNED_CALL_PATTERNS = {
    r"\bs?rand\s*\(": "rand()/srand(): use common/random.hh "
                      "counter streams",
    r"\brandom_device\b": "std::random_device is a nondeterministic "
                          "entropy source",
    r"(?<![\w:.])time\s*\(": "time(): wall clock in simulation "
                             "code (bench/ owns timing)",
    r"(?<![\w:.])clock\s*\(": "clock(): wall clock in simulation "
                              "code (bench/ owns timing)",
    # The type name, not just ::now(): `using clock = steady_clock;`
    # would otherwise launder the call site past a ::now pattern.
    r"\b(system|steady|high_resolution)_clock\b":
        "std::chrono clock type: wall time in simulation code "
        "(bench/ owns timing)",
}

UNORDERED_PATTERNS = {
    r"\bunordered_(map|set)\b":
        "std::unordered_{map,set} in deterministic-output code: "
        "iteration order is hash-seed dependent; use std::map / "
        "std::set / sorted vectors",
}

OMP_PATTERNS = {
    r"#\s*pragma\s+omp\b":
        "#pragma omp: OpenMP scheduling bypasses the deterministic "
        "LockstepTeam/ThreadPool sharding",
}

FAST_MATH_PATTERNS = {
    r"-ffast-math\b|-funsafe-math-optimizations\b|-Ofast\b":
        "fast-math flag: reassociation breaks scalar<->SIMD "
        "bit-exactness",
    r"-mfma\b|-ffp-contract=fast\b":
        "FMA contraction flag: contracted mul+add drifts from the "
        "scalar reference",
}


def rule_banned_calls(root):
    findings = []
    src = os.path.join(root, "src")
    for path in iter_files(src, CODE_SUFFIXES):
        raw = read_file(path)
        findings += scan_lines(rel(path, root), raw, "banned-call",
                               BANNED_CALL_PATTERNS)
    return findings


def rule_unordered(root):
    findings = []
    for sub in ("src/sim", "src/mac"):
        for path in iter_files(os.path.join(root, sub),
                               CODE_SUFFIXES):
            raw = read_file(path)
            findings += scan_lines(rel(path, root), raw,
                                   "unordered-container",
                                   UNORDERED_PATTERNS)
    return findings


def rule_omp(root):
    findings = []
    src = os.path.join(root, "src")
    for path in iter_files(src, CODE_SUFFIXES):
        raw = read_file(path)
        findings += scan_lines(rel(path, root), raw, "omp-pragma",
                               OMP_PATTERNS)
    return findings


WHITELIST_DIRECTIVE = re.compile(
    r"wilis-lint:\s*kernel-libm-whitelist:\s*([a-z0-9_ \t]+)")


def parse_libm_whitelist(raw_text, path):
    m = WHITELIST_DIRECTIVE.search(raw_text)
    if not m:
        return None, [Finding(path, 1, "kernel-libm",
                              "missing `wilis-lint: "
                              "kernel-libm-whitelist:` directive")]
    return frozenset(m.group(1).split()), []


# An identifier followed by '(' with its immediate prefix: member
# calls (`.`/`->`) are never libm; a `::`-qualified name is libm
# only when the qualifier is std.
CALL_RE = re.compile(
    r"(?P<prefix>(?:[\w>\]]\s*(?:\.|->)\s*)|(?:\w+\s*::\s*))?"
    r"\b(?P<name>[a-z][a-z0-9_]*)\s*\(")


def libm_calls(stripped_line):
    """Yield libm function names called on this line."""
    for m in CALL_RE.finditer(stripped_line):
        name = m.group("name")
        if name not in LIBM_FUNCTIONS:
            continue
        prefix = (m.group("prefix") or "").strip()
        if prefix.endswith(".") or prefix.endswith("->"):
            continue  # member call, not libm
        if prefix.endswith("::") and not prefix.startswith("std"):
            continue  # SomeType::floor(...), not libm
        yield name


def rule_kernel_libm(root, impl_path="src/common/kernels_impl.hh"):
    path = os.path.join(root, impl_path)
    if not os.path.exists(path):
        return [Finding(impl_path, 1, "kernel-libm",
                        "kernel policy file missing")]
    raw = read_file(path)
    whitelist, findings = parse_libm_whitelist(raw, impl_path)
    if whitelist is None:
        return findings
    stripped = strip_code(raw)
    allowed = allowed_lines(raw, "kernel-libm")
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if lineno in allowed:
            continue
        for name in libm_calls(line):
            if name in whitelist:
                continue
            findings.append(Finding(
                impl_path, lineno, "kernel-libm",
                "libm call '%s' outside the kernel whitelist (%s)"
                % (name, " ".join(sorted(whitelist)))))
    return findings


def rule_fast_math(root):
    findings = []
    cmake_files = [os.path.join(root, "CMakeLists.txt")]
    for base, _dirs, names in os.walk(os.path.join(root, "cmake")):
        for name in names:
            if name.endswith(".cmake") or name == "CMakeLists.txt":
                cmake_files.append(os.path.join(base, name))
    for path in cmake_files:
        if not os.path.exists(path):
            continue
        raw = read_file(path)
        allowed = allowed_lines(raw, "fast-math-flag")
        for lineno, line in enumerate(raw.splitlines(), 1):
            if lineno in allowed or line.lstrip().startswith("#"):
                continue
            for pattern, message in FAST_MATH_PATTERNS.items():
                if re.search(pattern, line):
                    findings.append(Finding(rel(path, root), lineno,
                                            "fast-math-flag",
                                            message))
    return findings


KEY_ARRAY_RE = re.compile(
    r"k(?:Scenario|Network)Keys\[\]\s*=\s*\{(.*?)\};", re.S)


def spec_keys(scenario_cc_text):
    """Every key string in the kScenarioKeys[]/kNetworkKeys[]
    tables (prefix families keep their trailing dot)."""
    keys = set()
    for m in KEY_ARRAY_RE.finditer(scenario_cc_text):
        keys.update(re.findall(r'"([^"]+)"', m.group(1)))
    return keys


def rule_undocumented_keys(root,
                           scenario_path="src/sim/scenario.cc",
                           doc_path="docs/SCENARIOS.md"):
    cc = os.path.join(root, scenario_path)
    doc = os.path.join(root, doc_path)
    findings = []
    if not os.path.exists(cc):
        return [Finding(scenario_path, 1, "undocumented-key",
                        "spec key tables missing")]
    if not os.path.exists(doc):
        return [Finding(doc_path, 1, "undocumented-key",
                        "scenario reference missing")]
    keys = spec_keys(read_file(cc))
    if not keys:
        return [Finding(scenario_path, 1, "undocumented-key",
                        "no keys parsed from kScenarioKeys[]/"
                        "kNetworkKeys[] (table format changed?)")]
    documented = set(re.findall(r"`([A-Za-z0-9_.]+)`",
                                read_file(doc)))
    for key in sorted(keys - documented):
        findings.append(Finding(
            scenario_path, 1, "undocumented-key",
            "spec key '%s' is not documented in %s"
            % (key, doc_path)))
    return findings


# ------------------------------------------------------------ driver

def iter_files(base, suffixes):
    for root_dir, _dirs, names in os.walk(base):
        for name in sorted(names):
            if name.endswith(suffixes):
                yield os.path.join(root_dir, name)


def read_file(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read()


def rel(path, root):
    return os.path.relpath(path, root)


def run_all(root):
    findings = []
    findings += rule_banned_calls(root)
    findings += rule_unordered(root)
    findings += rule_omp(root)
    findings += rule_kernel_libm(root)
    findings += rule_fast_math(root)
    findings += rule_undocumented_keys(root)
    return findings


# --------------------------------------------------------- self-test

def self_test():
    """Fixture snippets for every rule class: each seeded violation
    must be caught, each clean twin must pass. Runs in CI next to
    check_bench_regression.py --self-test."""
    import shutil
    import tempfile

    checks = []

    def check(name, cond):
        checks.append((name, bool(cond)))

    def one_file_findings(rule_fn, relpath, content, root_dir):
        full = os.path.join(root_dir, relpath)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w") as f:
            f.write(content)
        return rule_fn(root_dir)

    tmp = tempfile.mkdtemp(prefix="wilis_lint_selftest.")
    try:
        # ---- banned-call ------------------------------------------
        def banned(content):
            d = tempfile.mkdtemp(dir=tmp)
            return one_file_findings(rule_banned_calls,
                                     "src/x.cc", content, d)

        check("rand() is caught",
              banned("int x = rand();"))
        check("srand() is caught",
              banned("srand(42);"))
        check("random_device is caught",
              banned("std::random_device rd;"))
        check("time(nullptr) is caught",
              banned("auto t = time(nullptr);"))
        check("clock() is caught",
              banned("long c = clock();"))
        check("steady_clock::now is caught",
              banned("auto t = std::chrono::steady_clock::now();"))
        check("high_resolution_clock::now is caught",
              banned("auto t = high_resolution_clock::now();"))
        check("clock alias declaration is caught",
              banned("using clock = std::chrono::steady_clock;"))
        check("comment mention passes",
              not banned("// rand() and time() are banned here\n"))
        check("string mention passes",
              not banned('const char *s = "uses time() inside";'))
        check("identifier suffix passes",
              not banned("runtime(x); o.time(); c.clock();"))
        check("counter RNG passes",
              not banned("stream.doubleAt(counter);"))
        check("suppressed line passes",
              not banned("auto t = time(nullptr); "
                         "// wilis-lint: allow(banned-call) "
                         "bench helper\n"))
        check("suppression is rule-specific",
              banned("auto t = time(nullptr); "
                     "// wilis-lint: allow(omp-pragma)\n"))

        # ---- unordered-container ----------------------------------
        def unordered(relpath, content):
            d = tempfile.mkdtemp(dir=tmp)
            return one_file_findings(rule_unordered, relpath,
                                     content, d)

        check("unordered_map in src/sim is caught",
              unordered("src/sim/x.hh",
                        "std::unordered_map<int, int> m;"))
        check("unordered_set in src/mac is caught",
              unordered("src/mac/x.cc",
                        "std::unordered_set<int> s;"))
        check("unordered_map in src/phy passes",
              not unordered("src/phy/x.cc",
                            "std::unordered_map<int, int> m;"))
        check("std::map in src/sim passes",
              not unordered("src/sim/x.cc", "std::map<int, int> m;"))

        # ---- omp-pragma -------------------------------------------
        def omp(content):
            d = tempfile.mkdtemp(dir=tmp)
            return one_file_findings(rule_omp, "src/y.cc", content, d)

        check("#pragma omp is caught",
              omp("#pragma omp parallel for\nfor (...) {}"))
        check("#pragma once passes", not omp("#pragma once\n"))

        # ---- kernel-libm ------------------------------------------
        directive = ("// wilis-lint: kernel-libm-whitelist: "
                     "exp log sqrt\n")

        def libm(content):
            d = tempfile.mkdtemp(dir=tmp)
            return one_file_findings(rule_kernel_libm,
                                     "src/common/kernels_impl.hh",
                                     content, d)

        check("non-whitelisted std::sin is caught",
              libm(directive + "double y = std::sin(x);"))
        check("non-whitelisted bare pow is caught",
              libm(directive + "double y = pow(x, 2.0);"))
        check("whitelisted std::log passes",
              not libm(directive + "double y = std::log(x);"))
        check("member .floor() passes",
              not libm(directive + "double y = q.floor(x);"))
        check("VecI32::abs-style static call passes",
              not libm(directive + "VecF64::sqrt(v);" ))
        check("missing directive is itself a finding",
              libm("double y = std::log(x);"))

        # ---- fast-math-flag ---------------------------------------
        def fm(content):
            d = tempfile.mkdtemp(dir=tmp)
            return one_file_findings(rule_fast_math,
                                     "CMakeLists.txt", content, d)

        check("-ffast-math is caught",
              fm("add_compile_options(-ffast-math)\n"))
        check("-Ofast is caught", fm("set(FLAGS -Ofast)\n"))
        check("-mfma is caught",
              fm('set_source_files_properties(x.cc PROPERTIES '
                 'COMPILE_OPTIONS "-mfma")\n'))
        check("-ffp-contract=fast is caught",
              fm("add_compile_options(-ffp-contract=fast)\n"))
        check("-mavx2 passes",
              not fm('add_compile_options(-mavx2)\n'))
        check("cmake comment passes",
              not fm("# never pass -ffast-math here\n"))

        # ---- undocumented-key -------------------------------------
        cc_text = ('const char *const kScenarioKeys[] = {\n'
                   '    "rate", "snr_db",\n};\n'
                   'const char *const kNetworkKeys[] = {\n'
                   '    "users", "zz_internal",\n};\n')

        def keys(doc_text):
            d = tempfile.mkdtemp(dir=tmp)
            os.makedirs(os.path.join(d, "src/sim"))
            os.makedirs(os.path.join(d, "docs"))
            with open(os.path.join(d, "src/sim/scenario.cc"),
                      "w") as f:
                f.write(cc_text)
            with open(os.path.join(d, "docs/SCENARIOS.md"),
                      "w") as f:
                f.write(doc_text)
            return rule_undocumented_keys(d)

        check("undocumented key is caught",
              any("zz_internal" in f.message for f in keys(
                  "| `rate` | `snr_db` | `users` |\n")))
        check("fully documented tables pass",
              not keys("| `rate` | `snr_db` | `users` | "
                       "`zz_internal` |\n"))
        check("parse of the real key tables works",
              len(spec_keys(cc_text)) == 4)

        # ---- the tree itself is clean -----------------------------
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        tree = run_all(repo_root)
        for f in tree:
            print("  tree finding: %s" % f)
        check("the repo tree is clean", not tree)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print("  %-52s %s" % (name, "ok" if ok else "FAIL"))
    print("self-test: %d checks, %d failed" % (len(checks),
                                               len(failed)))
    return 0 if not failed else 1


def main():
    parser = argparse.ArgumentParser(
        description="WiLIS determinism linter")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the parent of "
                             "this script's directory)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = run_all(root)
    for f in findings:
        print("wilis-lint: %s" % f)
    if findings:
        print("wilis-lint: %d finding(s)" % len(findings),
              file=sys.stderr)
        sys.exit(1)
    print("wilis-lint: clean (%s)" % root)


if __name__ == "__main__":
    main()
