/**
 * @file
 * Scenario-grid sweep demo: a 24-cell grid (3 rates x 2 channels x
 * 2 SNRs x 2 payloads) sharded across the worker pool, with every
 * cell running on the zero-copy frame pipeline. The grid is then
 * re-run at a different thread count to demonstrate the determinism
 * contract: cell results are a pure function of (grid seed, cell
 * index, packet index), never of the sharding.
 *
 * Usage: ./build/scenario_grid [packets-per-cell] [threads]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "sim/scenario_grid.hh"

using namespace wilis;

int
main(int argc, char **argv)
{
    const std::uint64_t packets =
        argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                 : 40;
    const int threads = argc > 2 ? std::atoi(argv[2]) : 0;

    sim::ScenarioGrid grid;
    grid.base = sim::scenarioPreset("awgn-mid");
    grid.rates = {0, 2, 4};
    grid.channels = {"awgn", "rayleigh"};
    grid.snrsDb = {6.0, 12.0};
    grid.payloads = {256, 1024};
    grid.seed = 0xC0FFEE;

    std::printf("scenario grid: %zu cells x %llu packets, %d "
                "threads\n\n",
                grid.cellCount(),
                static_cast<unsigned long long>(packets), threads);

    sim::GridSweepOptions opt;
    opt.packetsPerCell = packets;
    opt.threads = threads;
    std::vector<sim::CellResult> cells = sim::sweepGrid(grid, opt);

    Table t({"cell", "scenario", "BER", "PER"});
    for (const auto &c : cells) {
        t.addRow({strprintf("%zu", c.cellIndex),
                  c.spec.label(),
                  strprintf("%.3e", c.bits.ber()),
                  strprintf("%.3f", c.per())});
    }
    t.print();

    // Replay the same grid single-threaded and compare: the sharding
    // must not leak into the physics.
    sim::GridSweepOptions serial = opt;
    serial.threads = 1;
    std::vector<sim::CellResult> replay = sim::sweepGrid(grid, serial);
    bool identical = replay.size() == cells.size();
    for (size_t i = 0; identical && i < cells.size(); ++i) {
        identical = cells[i].bits.bits == replay[i].bits.bits &&
                    cells[i].bits.errors == replay[i].bits.errors &&
                    cells[i].packetErrors == replay[i].packetErrors;
    }
    std::printf("\ndeterministic across thread counts: %s\n",
                identical ? "yes" : "NO");
    return identical ? 0 : 1;
}
