/**
 * @file
 * Scenario-grid sweep demo: a 24-cell grid (3 rates x 2 channels x
 * 2 SNRs x 2 payloads) run through the campaign layer's grid entry
 * point, with every cell on the zero-copy frame pipeline. The grid
 * is then re-run single-threaded and split across two in-process
 * shards, and all three merged campaign reports are compared byte
 * for byte -- the determinism contract: cell results are a pure
 * function of (grid seed, cell index, packet index), never of the
 * sharding, whether that sharding is threads or processes.
 *
 * Usage: ./build/scenario_grid [packets-per-cell] [threads]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/campaign.hh"
#include "sim/scenario_grid.hh"

using namespace wilis;

namespace {

/** Run the grid split @p shards ways and merge the shard reports. */
sim::RunReport
runSharded(const sim::ScenarioGrid &grid, std::uint64_t packets,
           int threads, int shards)
{
    std::vector<sim::RunReport> parts;
    for (int i = 0; i < shards; ++i) {
        sim::GridRunRequest req;
        req.grid = grid;
        req.packetsPerCell = packets;
        req.threads = threads;
        req.shardIndex = i;
        req.shardCount = shards;
        parts.push_back(sim::runGridShard(req));
    }
    return sim::mergeReports(parts);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t packets =
        argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                 : 40;
    const int threads = argc > 2 ? std::atoi(argv[2]) : 0;

    sim::ScenarioGrid grid;
    grid.base = sim::scenarioPreset("awgn-mid");
    grid.rates = {0, 2, 4};
    grid.channels = {"awgn", "rayleigh"};
    grid.snrsDb = {6.0, 12.0};
    grid.payloads = {256, 1024};
    grid.seed = 0xC0FFEE;

    std::printf("scenario grid: %zu cells x %llu packets, %d "
                "threads\n\n",
                grid.cellCount(),
                static_cast<unsigned long long>(packets), threads);

    const sim::RunReport report =
        runSharded(grid, packets, threads, 1);

    Table t({"cell", "scenario", "BER", "PER"});
    for (const auto &u : report.units) {
        const double ber =
            u.bits ? static_cast<double>(u.bitErrors) /
                         static_cast<double>(u.bits)
                   : 0.0;
        const double per =
            u.packets ? static_cast<double>(u.packetErrors) /
                            static_cast<double>(u.packets)
                      : 0.0;
        t.addRow({strprintf("%d", u.unit), u.name,
                  strprintf("%.3e", ber), strprintf("%.3f", per)});
    }
    t.print();

    // Replay single-threaded and as a two-shard campaign: neither
    // the thread count nor the process split may leak into the
    // physics, so all merged reports must be byte-identical.
    const std::string baseline = report.toJsonText();
    const bool thread_inv =
        runSharded(grid, packets, 1, 1).toJsonText() == baseline;
    const bool shard_inv =
        runSharded(grid, packets, threads, 2).toJsonText() ==
        baseline;
    std::printf("\ndeterministic across thread counts: %s\n",
                thread_inv ? "yes" : "NO");
    std::printf("deterministic across shard counts: %s\n",
                shard_inv ? "yes" : "NO");
    return thread_inv && shard_inv ? 0 : 1;
}
