/**
 * @file
 * SoftRate rate adaptation over a fading channel: watch the MAC ride
 * the fades. Every packet the receiver estimates the packet BER from
 * SoftPHY hints; the transmitter steps the rate up or down when the
 * estimate leaves the operating range.
 *
 * Run: ./build/examples/softrate_adaptation
 */

#include <cstdio>
#include <string>

#include "mac/oracle.hh"
#include "mac/softrate.hh"
#include "softphy/softphy.hh"

using namespace wilis;

int
main()
{
    std::printf("calibrating per-rate SoftPHY tables (BCJR)...\n");
    softphy::CalibrationSpec spec;
    spec.rx.decoder = "bcjr";
    spec.packets = 120;
    spec.threads = 0;
    softphy::BerEstimator est = calibrateRateEstimator(spec);

    sim::TestbenchConfig base;
    base.rx = spec.rx;
    base.channel = "rayleigh";
    base.channelCfg = li::Config::fromString(
        "snr_db=10,doppler_hz=20,seed=7,packet_interval_us=200,"
        "common_noise=true,block_fading=true");

    mac::RateOracle oracle(base);
    mac::SoftRateMac softrate;
    // A channel instance used only to narrate the fading level.
    auto fade_probe = channel::makeChannel("rayleigh", base.channelCfg);

    std::printf("\n%-7s %-22s %-12s %-8s %-9s %s\n", "packet",
                "rate", "pred. PBER", "errors", "optimal",
                "|h|^2 (dB)");
    mac::SelectionStats stats;
    for (std::uint64_t p = 0; p < 60; ++p) {
        phy::RateIndex chosen = softrate.currentRate();
        sim::PacketResult res = oracle.runAtRate(chosen, 1704, p);
        double pber = est.packetBerForRate(chosen, res.rx.soft);
        int optimal = oracle.optimalRate(1704, p);

        // Fading level seen by this packet (for the narrative only).
        double h2 = std::norm(fade_probe->gain(p, 0));

        std::printf("%-7llu %-22s %-12.2e %-8llu %-9s %+.1f\n",
                    static_cast<unsigned long long>(p),
                    phy::rateTable(chosen).name().c_str(), pber,
                    static_cast<unsigned long long>(res.bitErrors),
                    optimal >= 0
                        ? phy::rateTable(optimal).name().c_str()
                        : "(none)",
                    10.0 * std::log10(h2 + 1e-12));

        softrate.onFeedback(pber);
        if (optimal >= 0)
            stats.record(mac::classifySelection(chosen, optimal));
    }
    std::printf("\nselection quality: %.0f%% accurate, %.0f%% under, "
                "%.0f%% over\n",
                stats.accuratePct(), stats.underPct(),
                stats.overPct());
    return 0;
}
