/**
 * @file
 * Plug-n-play (the AWB workflow, WiLIS section 2): build the same
 * receiver with every registered decoder implementation and the same
 * testbench with every registered channel -- no source changes, just
 * configuration strings -- and compare them.
 *
 * Run: ./build/examples/plug_n_play [snr_db]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "decode/soft_decoder.hh"
#include "sim/sweep.hh"
#include "synth/area.hh"

using namespace wilis;

int
main(int argc, char **argv)
{
    double snr_db = argc > 1 ? std::atof(argv[1]) : 3.0;

    // What's on the shelf?
    decode::linkDecoders();
    auto decoders = decode::DecoderRegistry::global().names();
    auto channels = channel::ChannelRegistry::global().names();
    std::printf("registered decoders: ");
    for (const auto &n : decoders)
        std::printf("%s ", n.c_str());
    std::printf("\nregistered channels: ");
    for (const auto &n : channels)
        std::printf("%s ", n.c_str());
    std::printf("\n\n");

    // Swap the decoder slot by name: one config line per variant.
    Table t({"decoder", "BER (QPSK 1/2)", "latency (cycles)",
             "modeled LUTs", "soft output"});
    for (const auto &name : decoders) {
        sim::TestbenchConfig cfg;
        cfg.rate = 2;
        cfg.rx.decoder = name;
        cfg.channelCfg = li::Config::fromString(
            "snr_db=" + std::to_string(snr_db) + ",seed=5");
        ErrorStats s = sim::measureBer(
            sim::ScenarioSpec::fromTestbench(cfg, 1704), 60, 0);

        auto dec = decode::makeDecoder(name);
        synth::DecoderAreaParams p;
        long luts = (name == "bcjr-logmap")
                        ? synth::decoderTotal("bcjr", p).luts
                        : synth::decoderTotal(name, p).luts;
        t.addRow({name, strprintf("%.3e", s.ber()),
                  strprintf("%d", dec->pipelineLatencyCycles()),
                  strprintf("%ld", luts),
                  dec->producesSoftOutput() ? "yes" : "no"});
    }
    t.print();

    // Swap the channel the same way.
    std::printf("\nsame receiver, different channels:\n");
    for (const auto &name : channels) {
        sim::TestbenchConfig cfg;
        cfg.rate = 2;
        cfg.rx.decoder = "bcjr";
        cfg.channel = name;
        cfg.channelCfg = li::Config::fromString(
            "snr_db=" + std::to_string(snr_db) + ",seed=5");
        ErrorStats s = sim::measureBer(
            sim::ScenarioSpec::fromTestbench(cfg, 1704), 60, 0);
        std::printf("  %-10s BER %.3e\n", name.c_str(), s.ber());
    }
    return 0;
}
