/**
 * @file
 * Quickstart: push one packet through the full 802.11a/g transceiver
 * over an AWGN channel and look at what comes out -- decoded bits,
 * bit errors, and the SoftPHY confidence hints.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [snr_db] [rate 0..7]
 */

#include <cstdio>
#include <cstdlib>

#include "channel/channel.hh"
#include "common/random.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"

using namespace wilis;

int
main(int argc, char **argv)
{
    double snr_db = argc > 1 ? std::atof(argv[1]) : 7.0;
    int rate = argc > 2 ? std::atoi(argv[2]) : 2; // QPSK 1/2

    const phy::RateParams &rp = phy::rateTable(rate);
    std::printf("rate: %s, channel: AWGN %.1f dB\n",
                rp.name().c_str(), snr_db);

    // 1. Make a payload.
    const size_t payload_bits = 1704;
    SplitMix64 rng(2024);
    BitVec payload(payload_bits);
    for (auto &b : payload)
        b = rng.nextBit();

    // 2. Transmit: scramble, encode, puncture, interleave, map,
    //    IFFT, cyclic prefix.
    phy::OfdmTransmitter tx(rate);
    SampleVec samples = tx.modulate(payload);
    std::printf("modulated %zu bits -> %d OFDM symbols (%zu complex "
                "samples)\n",
                payload_bits, tx.numSymbols(payload_bits),
                samples.size());

    // 3. The software channel adds impairments.
    auto channel = channel::makeChannel(
        "awgn", li::Config::fromString(
                    "snr_db=" + std::to_string(snr_db) + ",seed=42"));
    channel->apply(samples, /*packet_index=*/0);

    // 4. Receive with the plug-n-play decoder of your choice:
    //    "viterbi", "sova", "bcjr", or "bcjr-logmap".
    phy::OfdmReceiver::Config rxc;
    rxc.decoder = "bcjr";
    phy::OfdmReceiver rx(rate, rxc);
    phy::RxResult res =
        rx.demodulate(samples, payload_bits, channel.get(), 0);

    // 5. Inspect the results.
    std::uint64_t errors = res.bitErrors(payload);
    std::printf("decoded %zu bits with %llu errors (BER %.2e)\n",
                res.payload.size(),
                static_cast<unsigned long long>(errors),
                static_cast<double>(errors) /
                    static_cast<double>(payload_bits));

    // The SoftPHY export: every bit carries an LLR confidence hint.
    double min_hint = 1e18;
    double sum = 0.0;
    for (const auto &d : res.soft) {
        min_hint = std::min(min_hint, d.llr);
        sum += std::min(d.llr, 1e6);
    }
    std::printf("SoftPHY hints: min %.0f, mean %.0f -- low hints "
                "mark the bits most likely to be wrong\n",
                min_hint, sum / static_cast<double>(res.soft.size()));
    return 0;
}
