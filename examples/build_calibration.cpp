/**
 * @file
 * Offline calibration-table builder for the hybrid-fidelity network
 * simulator: measures per (rate, SNR bin) frame error rates and
 * SoftPHY packet-BER statistics against the bit-exact PHY and writes
 * the table consumed by `fidelity=analytic|auto` runs
 * (sim::NetworkSpec::calibrationFile).
 *
 * The committed table data/network_calibration.txt is the output of
 *
 *     ./build/build_calibration data/network_calibration.txt cell-16
 *
 * i.e. the geometry sim::NetworkSim::calibrationBuildSpec derives
 * for the built-in cell presets (payload 1000, mean SNR 14 dB,
 * +-6 dB near/far spread). Regenerate it with this tool whenever
 * the PHY, the decoder defaults or the preset link template change.
 *
 * Run: ./build/build_calibration <out.txt> [preset|k=v,...]
 *                                [packets_per_cell] [threads]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/network_sim.hh"

using namespace wilis;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <out.txt> [preset|k=v,...] "
                     "[packets_per_cell] [threads]\n",
                     argv[0]);
        return 2;
    }
    const std::string out_path = argv[1];
    const std::string what = argc > 2 ? argv[2] : "cell-16";
    sim::NetworkSpec spec =
        sim::hasNetworkPreset(what)
            ? sim::networkPreset(what)
            : sim::NetworkSpec::fromConfig(
                  li::Config::fromString(what));

    softphy::CalibrationTable::BuildSpec build =
        sim::NetworkSim::calibrationBuildSpec(spec);
    if (argc > 3)
        build.packetsPerCell = std::strtoull(argv[3], nullptr, 10);
    if (argc > 4)
        build.threads = std::atoi(argv[4]);

    std::printf("calibrating %s: %d rates x %d bins "
                "[%g..%g dB step %g], %llu packets/cell, "
                "payload %zu bits, decoder %s\n",
                spec.name.c_str(), phy::kNumRates, build.numBins,
                build.snrLoDb,
                build.snrLoDb + build.numBins * build.snrStepDb,
                build.snrStepDb,
                static_cast<unsigned long long>(build.packetsPerCell),
                build.payloadBits, build.rx.decoder.c_str());

    softphy::CalibrationTable table =
        softphy::CalibrationTable::build(build);
    table.save(out_path);
    std::printf("wrote %s\n", out_path.c_str());

    // A quick human-readable sanity slice: the waterfall per rate.
    std::printf("\n%-6s", "snr dB");
    for (int r = 0; r < phy::kNumRates; ++r)
        std::printf("  r%d_per", r);
    std::printf("\n");
    for (int bin = 0; bin < table.numBins(); ++bin) {
        std::printf("%-6.1f", table.binCenterDb(bin));
        for (int r = 0; r < phy::kNumRates; ++r)
            std::printf("  %6.3f", table.cell(r, bin).per());
        std::printf("\n");
    }
    return 0;
}
