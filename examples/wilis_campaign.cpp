/**
 * @file
 * The multi-process campaign driver: split a NetworkSpec campaign
 * (its `reps=N` replications) across worker *processes*, collect the
 * per-shard JSON reports, and merge them deterministically
 * (sim/campaign.hh). The workers are `wilis_cli --network ...
 * --shard i/N` invocations of the sibling binary, so shard i of N
 * computes exactly the units a one-process run would -- the merged
 * report is byte-identical for any shard count, which CI enforces
 * by diffing a 1-shard against a 4-shard run.
 *
 * Usage:
 *   ./build/wilis_campaign <network-spec-arg> [--slots N]
 *       [--threads N] [--shards N] [--report FILE] [--json FILE]
 *
 * <network-spec-arg> is anything sim::parseNetworkSpecArg() takes:
 * a network preset name ("dense-urban-10k,reps=4"), an inline
 * key=value list, or a config file. --report writes the merged
 * campaign report; --json writes a bench-style metrics report
 * (wall time, shard count) for the bench-trajectory job.
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "sim/campaign.hh"
#include "sim/scenario.hh"

using namespace wilis;

namespace {

/** Directory of this binary; the worker binary lives next to it. */
std::string
binaryDir(const char *argv0)
{
    const std::string self(argv0);
    const size_t slash = self.rfind('/');
    return slash == std::string::npos ? std::string(".")
                                      : self.substr(0, slash);
}

/**
 * Spawn one worker: fork + execv (no shell -- the canonical config
 * string is passed as a single argv entry, so no quoting layer can
 * corrupt it). Returns the child pid.
 */
pid_t
spawnWorker(const std::string &binary,
            const std::vector<std::string> &args)
{
    const pid_t pid = fork();
    if (pid < 0)
        wilis_fatal("fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(binary.c_str()));
        for (const std::string &a : args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        execv(binary.c_str(), argv.data());
        std::fprintf(stderr, "exec %s failed: %s\n", binary.c_str(),
                     std::strerror(errno));
        _exit(127);
    }
    return pid;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec_arg;
    std::uint64_t slots = 120;
    int threads = 0;
    int shards = 1;
    std::string report_file;
    std::string json_file;
    for (int a = 1; a < argc; ++a) {
        const std::string flag = argv[a];
        const auto next = [&]() -> std::string {
            if (a + 1 >= argc)
                wilis_fatal("%s needs an argument", flag.c_str());
            return argv[++a];
        };
        if (flag == "--slots")
            slots = static_cast<std::uint64_t>(
                std::strtoull(next().c_str(), nullptr, 10));
        else if (flag == "--threads")
            threads = std::atoi(next().c_str());
        else if (flag == "--shards")
            shards = std::atoi(next().c_str());
        else if (flag == "--report")
            report_file = next();
        else if (flag == "--json")
            json_file = next();
        else if (spec_arg.empty() && flag.rfind("--", 0) != 0)
            spec_arg = flag;
        else
            wilis_fatal("unknown campaign flag '%s'", flag.c_str());
    }
    if (spec_arg.empty()) {
        std::fprintf(stderr,
                     "usage: %s <network-spec-arg> [--slots N] "
                     "[--threads N] [--shards N] [--report FILE] "
                     "[--json FILE]\n",
                     argv[0]);
        return 2;
    }
    wilis_assert(shards >= 1, "--shards wants >= 1, got %d", shards);

    // Resolve the spec once, then ship its *canonical* config string
    // to every worker: each shard parses the identical campaign
    // description, so their reports agree on the config field the
    // merge validates.
    const sim::NetworkSpec spec = sim::parseNetworkSpecArg(spec_arg);
    const std::string canonical = spec.toConfig().toString();
    const std::string worker = binaryDir(argv[0]) + "/wilis_cli";

    char tmpl[] = "/tmp/wilis_campaign.XXXXXX";
    const char *tmpdir = mkdtemp(tmpl);
    if (tmpdir == nullptr)
        wilis_fatal("mkdtemp failed: %s", std::strerror(errno));

    bench::Stopwatch sw;
    std::vector<pid_t> pids;
    std::vector<std::string> shard_files;
    for (int i = 0; i < shards; ++i) {
        const std::string out = std::string(tmpdir) + "/shard_" +
                                std::to_string(i) + ".json";
        shard_files.push_back(out);
        std::vector<std::string> args;
        args.push_back("--network");
        args.push_back(canonical);
        args.push_back("--slots");
        args.push_back(std::to_string(slots));
        args.push_back("--threads");
        args.push_back(std::to_string(threads));
        args.push_back("--shard");
        args.push_back(std::to_string(i) + "/" +
                       std::to_string(shards));
        args.push_back("--report");
        args.push_back(out);
        pids.push_back(spawnWorker(worker, args));
    }
    for (size_t i = 0; i < pids.size(); ++i) {
        int status = 0;
        if (waitpid(pids[i], &status, 0) < 0)
            wilis_fatal("waitpid failed: %s", std::strerror(errno));
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            wilis_fatal("campaign worker %zu failed (status %d)", i,
                        status);
    }

    std::vector<sim::RunReport> shard_reports;
    for (const std::string &f : shard_files) {
        shard_reports.push_back(sim::RunReport::load(f));
        std::remove(f.c_str());
    }
    rmdir(tmpdir);

    const sim::RunReport merged = sim::mergeReports(shard_reports);
    const double wall_s = sw.seconds();

    const sim::UnitReport &agg = merged.aggregate;
    const double slots_done = static_cast<double>(slots) *
                              static_cast<double>(merged.unitsTotal);
    std::printf("campaign: %d unit(s) x %llu slots over %d "
                "shard(s) in %.2f s\n",
                merged.unitsTotal,
                static_cast<unsigned long long>(slots), shards,
                wall_s);
    std::printf("aggregate: %d cells, %d users/rep, %llu delivered, "
                "%llu dropped, goodput %.3f Mb/s per rep\n",
                agg.cells, agg.users,
                static_cast<unsigned long long>(agg.stats.delivered),
                static_cast<unsigned long long>(agg.stats.dropped),
                agg.stats.goodputMbps(
                    static_cast<std::uint64_t>(slots_done),
                    spec.frameIntervalUs));
    if (!report_file.empty()) {
        merged.save(report_file);
        std::printf("merged report -> %s\n", report_file.c_str());
    }

    if (!json_file.empty()) {
        bench::JsonReport rep("campaign");
        rep.meta("config", canonical);
        rep.meta("slots", std::to_string(slots));
        rep.meta("shards", std::to_string(shards));
        rep.metric("wall_s", wall_s, "s", false);
        rep.metric("unit_slots_per_s",
                   wall_s > 0.0 ? slots_done / wall_s : 0.0,
                   "slots/s", true);
        rep.write(json_file);
    }
    return 0;
}
