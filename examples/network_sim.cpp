/**
 * @file
 * Multi-user network demo. Single-cell specs run N independent
 * links with per-user near/far SNR offsets on an AR(1) fading
 * timeline; multi-cell specs (cells=RxC) run the interference-aware
 * deployment: 2-D user placement, pathloss + shadowing link
 * budgets, per-slot SINR over same-slot interfering cells, traffic
 * queues and a per-cell scheduler. Prints a per-user table (capped
 * for large deployments), a per-cell summary and the aggregate
 * latency / rate-usage histograms.
 *
 * Run: ./build/network_sim [preset[,k=v,...]|k=v,...] [slots] [threads]
 *                          [--trace FILE]
 *      ./build/network_sim cell-16 200 4
 *      ./build/network_sim grid-3x3 400 4          # from repo root
 *      ./build/network_sim "users=8,snr_db=18,arq=stopwait" 100
 *      ./build/network_sim grid-3x3,engine=peruser 200 2
 *      ./build/network_sim grid-3x3 200 4 --trace trace.txt
 *      ./build/network_sim urban-mobile 2000 4    # mobility + churn
 *
 * --trace FILE records the per-packet event trace (enqueue / grant
 * / tx / ack / drop / expire, plus ho / join / leave session events
 * on mobile runs) and saves it to FILE; the trace is bit-identical
 * for any thread count and either multi-cell engine.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "mac/packet_trace.hh"
#include "phy/modulation.hh"
#include "sim/campaign.hh"
#include "sim/network_sim.hh"

using namespace wilis;

namespace {

void
printHistogram(const char *title, const Histogram &h,
               const std::function<std::string(int)> &label)
{
    std::uint64_t peak = 0;
    for (int b = 0; b < h.numBins(); ++b)
        peak = std::max(peak, h.count(b));
    if (peak == 0)
        return;
    std::printf("\n%s\n", title);
    for (int b = 0; b < h.numBins(); ++b) {
        if (h.count(b) == 0)
            continue;
        int bar = static_cast<int>(40 * h.count(b) / peak);
        std::printf("  %-14s %8llu %s\n", label(b).c_str(),
                    static_cast<unsigned long long>(h.count(b)),
                    std::string(static_cast<size_t>(bar), '#')
                        .c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off "--trace FILE" anywhere on the line, then read the
    // positionals as before.
    std::string trace_file;
    std::vector<std::string> pos;
    for (int a = 1; a < argc; ++a) {
        if (std::string(argv[a]) == "--trace") {
            if (a + 1 >= argc) {
                std::fprintf(stderr,
                             "--trace needs a file argument\n");
                return 1;
            }
            trace_file = argv[++a];
        } else {
            pos.emplace_back(argv[a]);
        }
    }
    std::string what = pos.size() > 0 ? pos[0] : "cell-16";
    std::uint64_t slots =
        pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10)
                       : 120;
    int threads = pos.size() > 2 ? std::atoi(pos[2].c_str()) : 0;

    // A preset name (with optional k=v overrides), a bare config
    // string, or a config file -- the shared spec-argument parser.
    sim::NetworkSpec spec = sim::parseNetworkSpecArg(what);

    if (spec.multicell())
        std::printf("network: %s — %dx%d cells, %d users, %s "
                    "traffic (load %g), %s scheduler, %s ARQ "
                    "(window %d), %.0f Hz Doppler, %s fidelity\n",
                    spec.name.c_str(), spec.topology.rows,
                    spec.topology.cols, spec.numUsers,
                    mac::trafficKindName(spec.traffic.kind),
                    spec.traffic.load,
                    mac::schedulerKindName(spec.scheduler.kind),
                    mac::arqModeName(spec.arqMode), spec.arqWindow,
                    spec.dopplerHz,
                    sim::fidelityModeName(spec.fidelity.mode));
    else
        std::printf("network: %s — %d users, %s arrivals, %s ARQ "
                    "(window %d), %.0f Hz Doppler, SNR %g±%g dB, "
                    "%s fidelity\n",
                    spec.name.c_str(), spec.numUsers,
                    spec.arrivalModel.c_str(),
                    mac::arqModeName(spec.arqMode), spec.arqWindow,
                    spec.dopplerHz, spec.link.snrDb(),
                    spec.snrSpreadDb,
                    sim::fidelityModeName(spec.fidelity.mode));

    // One run through the unified campaign entry point (which turns
    // the trace on when a trace file is requested).
    sim::RunRequest req;
    req.spec = spec;
    req.slots = slots;
    req.threads = threads;
    req.traceFile = trace_file;
    sim::NetworkResult res = sim::runNetworkRun(req);
    spec = res.spec;

    if (!trace_file.empty()) {
        res.trace->save(trace_file);
        std::printf("trace: %zu events -> %s\n",
                    res.trace->entries().size(),
                    trace_file.c_str());
    }

    // Per-user detail reads well to a few dozen users; a 10k-user
    // deployment speaks through the per-cell and aggregate views.
    if (res.users.size() <= 64) {
        // The cell column only means something on a grid.
        std::printf(
            "\n%-5s %s%-9s %-7s %-8s %-7s %-7s %-9s %-10s %-8s\n",
            "user", spec.multicell() ? "cell  " : "", "snr dB",
            "sent", "ok%", "rtx", "drop", "goodput", "latency",
            "top rate");
        for (const sim::UserStats &u : res.users) {
            // Most used rate for the narrative column.
            int top = 0;
            for (int b = 1; b < u.rateHist.numBins(); ++b)
                if (u.rateHist.count(b) > u.rateHist.count(top))
                    top = b;
            std::printf("%-5d ", u.user);
            if (spec.multicell())
                std::printf("%-5d ", u.servingCell);
            const double snr =
                spec.multicell()
                    ? u.meanSnrDb
                    : spec.link.snrDb() + u.snrOffsetDb;
            std::printf(
                "%-9.1f %-7llu %-8.1f %-7llu %-7llu "
                "%-9.3f %-10.1f %s\n",
                snr,
                static_cast<unsigned long long>(u.framesSent),
                100.0 * u.frameSuccessRate(),
                static_cast<unsigned long long>(u.retransmissions),
                static_cast<unsigned long long>(u.dropped),
                u.goodputMbps(res.slots, spec.frameIntervalUs),
                u.latencySlots.mean(),
                phy::rateTable(top).name().c_str());
        }
    }

    if (spec.multicell()) {
        // Per-cell roll-up: merge each cell's users in user order
        // (deterministic, like the aggregate).
        std::vector<sim::UserStats> cells(
            static_cast<size_t>(res.cells));
        std::vector<int> population(static_cast<size_t>(res.cells),
                                    0);
        for (const sim::UserStats &u : res.users) {
            cells[static_cast<size_t>(u.servingCell)].merge(u);
            ++population[static_cast<size_t>(u.servingCell)];
        }
        std::printf("\n%-5s %-6s %-8s %-8s %-9s %-10s %-10s\n",
                    "cell", "users", "sent", "ok%", "goodput",
                    "sinr dB", "queue dr");
        for (int c = 0; c < res.cells; ++c) {
            const sim::UserStats &cs =
                cells[static_cast<size_t>(c)];
            std::printf(
                "%-5d %-6d %-8llu %-8.1f %-9.3f %-10.1f %-10llu\n",
                c, population[static_cast<size_t>(c)],
                static_cast<unsigned long long>(cs.framesSent),
                100.0 * cs.frameSuccessRate(),
                cs.goodputMbps(res.slots, spec.frameIntervalUs),
                cs.sinrDb.mean(),
                static_cast<unsigned long long>(cs.queueDrops));
        }
    }

    const sim::UserStats &agg = res.aggregate;
    if (spec.multicell())
        std::printf("\ntraffic: %llu arrivals, %llu queue drops, "
                    "mean queue wait %.1f slots, mean SINR %.1f dB, "
                    "%llu contention-stalled user-slots\n",
                    static_cast<unsigned long long>(agg.arrivals),
                    static_cast<unsigned long long>(agg.queueDrops),
                    agg.queueWaitSlots.mean(), agg.sinrDb.mean(),
                    static_cast<unsigned long long>(
                        agg.stalledSlots));
    // Session dynamics only exist when the spec asks for them, and
    // static runs must print byte-identical output to earlier PRs.
    if (spec.multicell() && spec.mobility.enabled())
        std::printf("mobility: %llu handovers (%llu ping-pong), "
                    "%llu joins, %llu leaves, pre/post-HO goodput "
                    "%.3f/%.3f Mb/s\n",
                    static_cast<unsigned long long>(agg.handovers),
                    static_cast<unsigned long long>(agg.pingPongs),
                    static_cast<unsigned long long>(agg.joins),
                    static_cast<unsigned long long>(agg.leaves),
                    agg.preHoGoodputMbps(spec.frameIntervalUs),
                    agg.postHoGoodputMbps(spec.frameIntervalUs));
    if (agg.analyticFrames)
        std::printf("\nfidelity mix: %llu full-PHY + %llu analytic "
                    "frame slots (%.1f%% bit-exact)\n",
                    static_cast<unsigned long long>(
                        agg.fullPhyFrames),
                    static_cast<unsigned long long>(
                        agg.analyticFrames),
                    agg.framesSent
                        ? 100.0 *
                              static_cast<double>(agg.fullPhyFrames) /
                              static_cast<double>(agg.framesSent)
                        : 0.0);
    std::printf("\naggregate: %llu frames, %.1f%% clean, %llu rtx, "
                "%llu delivered, %llu dropped, %.3f Mb/s cell "
                "goodput, p50/p95 latency %.0f/%.0f slots\n",
                static_cast<unsigned long long>(agg.framesSent),
                100.0 * agg.frameSuccessRate(),
                static_cast<unsigned long long>(agg.retransmissions),
                static_cast<unsigned long long>(agg.delivered),
                static_cast<unsigned long long>(agg.dropped),
                res.aggregateGoodputMbps(),
                agg.latencyHist.quantile(0.5),
                agg.latencyHist.quantile(0.95));

    printHistogram("delivery latency (slots)", agg.latencyHist,
                   [](int b) { return std::to_string(b); });
    printHistogram("transmissions per rate", agg.rateHist, [](int b) {
        return phy::rateTable(b).name();
    });
    return 0;
}
