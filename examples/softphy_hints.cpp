/**
 * @file
 * SoftPHY in action: calibrate the two-level lookup BER estimator,
 * then use per-bit BER estimates the way Partial Packet Recovery
 * does -- find the corrupted chunks of a packet and ask for just
 * those bits again instead of the whole frame.
 *
 * Run: ./build/examples/softphy_hints
 */

#include <cstdio>

#include "mac/ppr.hh"
#include "sim/testbench.hh"
#include "softphy/softphy.hh"

using namespace wilis;

int
main()
{
    // Calibrate the estimator for QAM-16 / BCJR (section 4.2's
    // two-level lookup: modulation selects a table, the table maps
    // LLR hints to BER).
    std::printf("calibrating SoftPHY estimator (QAM-16, BCJR)...\n");
    softphy::CalibrationSpec spec;
    spec.rx.decoder = "bcjr";
    spec.packets = 150;
    spec.threads = 0;
    softphy::BerEstimator est;
    est.setTable(phy::Modulation::QAM16,
                 calibrateTable(phy::Modulation::QAM16, spec));

    // A noisy operating point: some packets arrive corrupted.
    sim::TestbenchConfig cfg;
    cfg.rate = 4; // QAM-16 1/2
    cfg.rx = spec.rx;
    cfg.channelCfg = li::Config::fromString("snr_db=7.5,seed=99");
    sim::Testbench tb(cfg);

    mac::PprPolicy ppr(&est, /*ber_threshold=*/1e-3,
                       /*chunk_bits=*/64);

    std::printf("\n%-8s %-8s %-12s %-10s %-12s %s\n", "packet",
                "errors", "pred. PBER", "flagged", "recoverable",
                "retransmit");
    std::uint64_t arq_bits = 0;
    std::uint64_t ppr_bits = 0;
    for (std::uint64_t p = 0; p < 20; ++p) {
        sim::PacketResult res = tb.runPacket(1704, p);
        double pber =
            est.packetBer(phy::Modulation::QAM16, res.rx.soft);
        mac::PprOutcome out = ppr.evaluate(
            phy::Modulation::QAM16, res.rx.soft, res.txPayload);

        // Conventional ARQ retransmits everything on any error; PPR
        // retransmits only flagged chunks.
        arq_bits += res.bitErrors ? 1704 : 0;
        ppr_bits += out.flaggedBits;

        std::printf("%-8llu %-8llu %-12.2e %-10llu %-12s %5.1f%%\n",
                    static_cast<unsigned long long>(p),
                    static_cast<unsigned long long>(res.bitErrors),
                    pber,
                    static_cast<unsigned long long>(out.flaggedBits),
                    out.recoverable() ? "yes" : "NO",
                    100.0 * out.retransmitFraction());
    }
    std::printf("\nretransmission volume over 20 packets: ARQ %llu "
                "bits vs PPR %llu bits\n",
                static_cast<unsigned long long>(arq_bits),
                static_cast<unsigned long long>(ppr_bits));
    std::printf("(PPR pays a small overhead on clean packets but "
                "avoids full retransmits on dirty ones)\n");
    return 0;
}
