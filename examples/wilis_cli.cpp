/**
 * @file
 * Config-file-driven simulation runner -- the AWB-style plug-n-play
 * workflow (WiLIS section 2) as a command-line tool: describe an
 * experiment in a key=value file, run it, get a report. No source
 * changes to swap any implementation.
 *
 * Usage:
 *   ./build/examples/wilis_cli experiment.cfg
 *   ./build/examples/wilis_cli "rate=4,decoder=sova,snr_db=9,packets=200"
 *
 * Recognized keys (all optional):
 *   rate        0..7 rate index               [default 2]
 *   decoder     viterbi|sova|bcjr|bcjr-logmap [bcjr]
 *   channel     awgn|rayleigh|multipath       [awgn]
 *   snr_db      channel SNR                   [8]
 *   doppler_hz  fading Doppler                [20]
 *   num_taps    multipath taps                [4]
 *   soft_width  demapper quantization bits    [6]
 *   block_len   BCJR window                   [64]
 *   traceback_l / traceback_k  SOVA windows   [64]
 *   payload_bits packet size                  [1704]
 *   packets     packets to simulate           [100]
 *   threads     worker threads (0=all)        [0]
 *   seed        channel seed                  [1]
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "decode/soft_decoder.hh"
#include "sim/sweep.hh"
#include "synth/area.hh"

using namespace wilis;

namespace {

bool
looksLikeInlineConfig(const std::string &arg)
{
    return arg.find('=') != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    li::Config cfg;
    if (argc > 1) {
        std::string arg = argv[1];
        cfg = looksLikeInlineConfig(arg)
                  ? li::Config::fromString(arg)
                  : li::Config::fromFile(arg);
    } else {
        std::fprintf(stderr,
                     "usage: %s <config-file | key=value,...>\n"
                     "running the default experiment instead\n\n",
                     argv[0]);
    }

    sim::TestbenchConfig tb;
    tb.rate = static_cast<phy::RateIndex>(cfg.getInt("rate", 2));
    tb.rx.decoder = cfg.getString("decoder", "bcjr");
    tb.rx.demapper.softWidth =
        static_cast<int>(cfg.getInt("soft_width", 6));
    tb.rx.decoderCfg = li::Config::fromString(strprintf(
        "block_len=%ld,traceback_l=%ld,traceback_k=%ld",
        cfg.getInt("block_len", 64), cfg.getInt("traceback_l", 64),
        cfg.getInt("traceback_k", 64)));
    tb.channel = cfg.getString("channel", "awgn");
    tb.channelCfg = li::Config::fromString(strprintf(
        "snr_db=%f,doppler_hz=%f,num_taps=%ld,seed=%ld",
        cfg.getDouble("snr_db", 8.0), cfg.getDouble("doppler_hz", 20.0),
        cfg.getInt("num_taps", 4), cfg.getInt("seed", 1)));

    const size_t payload =
        static_cast<size_t>(cfg.getInt("payload_bits", 1704));
    const std::uint64_t packets =
        static_cast<std::uint64_t>(cfg.getInt("packets", 100));
    const int threads = static_cast<int>(cfg.getInt("threads", 0));

    std::printf("WiLIS experiment: %s, %s decoder, %s channel @ %.1f "
                "dB, %llu packets x %zu bits\n\n",
                phy::rateTable(tb.rate).name().c_str(),
                tb.rx.decoder.c_str(), tb.channel.c_str(),
                cfg.getDouble("snr_db", 8.0),
                static_cast<unsigned long long>(packets), payload);

    // BER + PER sweep.
    std::uint64_t packet_errors = 0;
    ErrorStats bits;
    {
        std::vector<ErrorStats> per_thread(16);
        std::vector<std::uint64_t> pkt_err(16, 0);
        sim::sweepPackets(
            tb, payload, packets, threads,
            [&](int tid, const sim::PacketResult &res, std::uint64_t) {
                per_thread[static_cast<size_t>(tid)].bits +=
                    res.txPayload.size();
                per_thread[static_cast<size_t>(tid)].errors +=
                    res.bitErrors;
                pkt_err[static_cast<size_t>(tid)] += !res.ok;
            });
        for (size_t i = 0; i < per_thread.size(); ++i) {
            bits.merge(per_thread[i]);
            packet_errors += pkt_err[i];
        }
    }

    Table t({"metric", "value"});
    t.addRow({"bits simulated", strprintf("%llu",
                                          static_cast<unsigned long long>(
                                              bits.bits))});
    t.addRow({"bit errors", strprintf("%llu",
                                      static_cast<unsigned long long>(
                                          bits.errors))});
    t.addRow({"BER", strprintf("%.3e", bits.ber())});
    t.addRow({"PER", strprintf("%.3f",
                               static_cast<double>(packet_errors) /
                                   static_cast<double>(packets))});

    // Architecture summary for the selected decoder.
    auto dec = decode::makeDecoder(tb.rx.decoder, tb.rx.decoderCfg);
    t.addRow({"decoder latency (cycles)",
              strprintf("%d", dec->pipelineLatencyCycles())});
    t.addRow({"decoder latency @60 MHz (us)",
              strprintf("%.2f",
                        synth::latencyUs(dec->pipelineLatencyCycles(),
                                         60.0))});
    synth::DecoderAreaParams ap;
    ap.softWidth = tb.rx.demapper.softWidth;
    ap.window = static_cast<int>(cfg.getInt("block_len", 64));
    std::string area_name = tb.rx.decoder == "bcjr-logmap"
                                ? "bcjr"
                                : tb.rx.decoder;
    t.addRow({"modeled area (LUTs)",
              strprintf("%ld",
                        synth::decoderTotal(area_name, ap).luts)});
    t.print();
    return 0;
}
