/**
 * @file
 * Config-file-driven simulation runner -- the AWB-style plug-n-play
 * workflow (WiLIS section 2) as a command-line tool: describe an
 * experiment in a key=value file, run it, get a report. No source
 * changes to swap any implementation. Experiments are resolved to a
 * sim::ScenarioSpec, the same description the testbench, the LI
 * pipeline and the grid sweeps consume.
 *
 * Usage:
 *   ./build/wilis_cli experiment.cfg
 *   ./build/wilis_cli "rate=4,decoder=sova,snr_db=9,packets=200"
 *   ./build/wilis_cli rayleigh-fading          (a scenario preset)
 *
 * Recognized keys (all optional):
 *   preset      scenario preset name to start from
 *   rate        0..7 rate index               [default 2]
 *   decoder     viterbi|sova|bcjr|bcjr-logmap [bcjr]
 *   channel     awgn|rayleigh|multipath       [awgn]
 *   snr_db      channel SNR                   [8]
 *   doppler_hz  fading Doppler                [20]
 *   num_taps    multipath taps                [4]
 *   soft_width  demapper quantization bits    [6]
 *   block_len   BCJR window                   [64]
 *   traceback_l / traceback_k  SOVA windows   [64]
 *   payload_bits packet size                  [1704]
 *   packets     packets to simulate           [100]
 *   threads     worker threads (0=all)        [0]
 *   seed        channel seed                  [1]
 *   channel.<k> / decoder.<k>  passed through verbatim
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "decode/soft_decoder.hh"
#include "sim/scenario.hh"
#include "sim/sweep.hh"
#include "synth/area.hh"

using namespace wilis;

namespace {

bool
looksLikeInlineConfig(const std::string &arg)
{
    return arg.find('=') != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    li::Config cfg;
    sim::ScenarioSpec spec;
    spec.rate = 2;
    spec.payloadBits = 1704;
    spec.channelCfg = li::Config::fromString("snr_db=8,seed=1");
    if (argc > 1) {
        std::string arg = argv[1];
        if (looksLikeInlineConfig(arg)) {
            cfg = li::Config::fromString(arg);
        } else if (sim::hasScenarioPreset(arg)) {
            spec = sim::scenarioPreset(arg);
        } else {
            cfg = li::Config::fromFile(arg);
        }
    } else {
        std::fprintf(stderr,
                     "usage: %s <config-file | key=value,... | "
                     "preset>\n"
                     "running the default experiment instead\n\n",
                     argv[0]);
    }

    if (cfg.has("preset"))
        spec = sim::scenarioPreset(cfg.getString("preset"));

    // The spec parser handles the shared key set (rate, decoder,
    // channel, snr_db, payload_bits, csi_weight, channel.<k>,
    // decoder.<k>, ...); only the CLI's historical shorthand keys
    // need forwarding by hand. Keys absent from the config keep the
    // preset's values (sir_db, delay_spread... survive).
    spec.applyConfig(cfg);
    for (const char *key : {"doppler_hz", "num_taps"}) {
        if (cfg.has(key))
            spec.channelCfg.set(key, cfg.getString(key));
    }
    for (const char *key :
         {"block_len", "traceback_l", "traceback_k"}) {
        if (cfg.has(key))
            spec.rx.decoderCfg.set(key, cfg.getString(key));
    }

    const std::uint64_t packets =
        static_cast<std::uint64_t>(cfg.getInt("packets", 100));
    const int threads = static_cast<int>(cfg.getInt("threads", 0));

    std::printf("WiLIS experiment: %s, %s decoder, %s channel @ %.1f "
                "dB, %llu packets x %zu bits\n\n",
                phy::rateTable(spec.rate).name().c_str(),
                spec.rx.decoder.c_str(), spec.channel.c_str(),
                spec.snrDb(),
                static_cast<unsigned long long>(packets),
                spec.payloadBits);

    // BER + PER sweep on the zero-copy frame path; one accumulator
    // slot per worker the sweep will actually spawn.
    const size_t slots = static_cast<size_t>(
        sim::sweepWorkerCount(threads, packets));
    std::uint64_t packet_errors = 0;
    ErrorStats bits;
    {
        std::vector<ErrorStats> per_thread(slots);
        std::vector<std::uint64_t> pkt_err(slots, 0);
        sim::sweepFrames(
            spec, packets, threads,
            [&](int tid, const sim::FrameResult &res, std::uint64_t) {
                per_thread[static_cast<size_t>(tid)].bits +=
                    res.txPayload.size();
                per_thread[static_cast<size_t>(tid)].errors +=
                    res.bitErrors;
                pkt_err[static_cast<size_t>(tid)] += !res.ok;
            });
        for (size_t i = 0; i < per_thread.size(); ++i) {
            bits.merge(per_thread[i]);
            packet_errors += pkt_err[i];
        }
    }

    Table t({"metric", "value"});
    t.addRow({"scenario", spec.label()});
    t.addRow({"bits simulated", strprintf("%llu",
                                          static_cast<unsigned long long>(
                                              bits.bits))});
    t.addRow({"bit errors", strprintf("%llu",
                                      static_cast<unsigned long long>(
                                          bits.errors))});
    t.addRow({"BER", strprintf("%.3e", bits.ber())});
    t.addRow({"PER", strprintf("%.3f",
                               static_cast<double>(packet_errors) /
                                   static_cast<double>(packets))});

    // Architecture summary for the selected decoder.
    auto dec = decode::makeDecoder(spec.rx.decoder,
                                   spec.rx.decoderCfg);
    t.addRow({"decoder latency (cycles)",
              strprintf("%d", dec->pipelineLatencyCycles())});
    t.addRow({"decoder latency @60 MHz (us)",
              strprintf("%.2f",
                        synth::latencyUs(dec->pipelineLatencyCycles(),
                                         60.0))});
    synth::DecoderAreaParams ap;
    ap.softWidth = spec.rx.demapper.softWidth;
    ap.window = static_cast<int>(cfg.getInt("block_len", 64));
    std::string area_name = spec.rx.decoder == "bcjr-logmap"
                                ? "bcjr"
                                : spec.rx.decoder;
    t.addRow({"modeled area (LUTs)",
              strprintf("%ld",
                        synth::decoderTotal(area_name, ap).luts)});
    t.print();
    return 0;
}
