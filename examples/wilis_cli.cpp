/**
 * @file
 * Config-file-driven simulation runner -- the AWB-style plug-n-play
 * workflow (WiLIS section 2) as a command-line tool: describe an
 * experiment in a key=value file, run it, get a report. No source
 * changes to swap any implementation. It is also the campaign
 * layer's worker binary: wilis_campaign spawns one
 * `wilis_cli --network ... --shard i/N` process per shard and merges
 * their reports (sim/campaign.hh).
 *
 * Link-experiment mode (the historical interface):
 *   ./build/wilis_cli experiment.cfg
 *   ./build/wilis_cli "rate=4,decoder=sova,snr_db=9,packets=200"
 *   ./build/wilis_cli rayleigh-fading,snr_db=10   (preset + tweaks)
 *
 * The argument is resolved by sim::parseScenarioSpecArg() -- a
 * config file, an inline key=value list, or a scenario preset with
 * optional overrides -- after the CLI peels off its own keys:
 *   packets     packets to simulate           [default 100]
 *   threads     worker threads (0=all)        [0]
 *   doppler_hz / num_taps                     (channel shorthands)
 *   block_len / traceback_l / traceback_k    (decoder shorthands)
 * Every other key is owned by the spec parser (rate, decoder,
 * channel, snr_db, payload_bits, channel.<k>, decoder.<k>, ...).
 *
 * Campaign-shard mode:
 *   ./build/wilis_cli --network <spec-arg> [--slots N] [--threads N]
 *                     [--shard I/N] [--report FILE] [--trace FILE]
 * runs this shard's replications of a NetworkSpec campaign through
 * sim::runCampaignShard() and (with --report) writes the shard's
 * RunReport JSON for the campaign driver to merge.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "decode/soft_decoder.hh"
#include "sim/campaign.hh"
#include "sim/scenario.hh"
#include "sim/sweep.hh"
#include "synth/area.hh"

using namespace wilis;

namespace {

/** Keys the CLI consumes itself, peeled before the spec parser. */
const char *const kCliKeys[] = {
    "packets",     "threads",     "doppler_hz", "num_taps",
    "block_len",   "traceback_l", "traceback_k",
};

/**
 * Resolve a link-experiment argument the same way
 * sim::parseScenarioSpecArg() classifies it -- inline config,
 * config file, or "preset[,k=v,...]" -- into one flat config (the
 * preset head becomes a preset= entry), so the CLI-only keys can be
 * peeled off before the spec parser validates the rest.
 */
li::Config
resolveArgConfig(const std::string &arg)
{
    const size_t comma = arg.find(',');
    const std::string head = arg.substr(0, comma);
    if (head.find('=') == std::string::npos) {
        if (comma == std::string::npos &&
            !sim::hasScenarioPreset(head))
            return li::Config::fromFile(arg);
        li::Config cfg =
            comma == std::string::npos
                ? li::Config()
                : li::Config::fromString(arg.substr(comma + 1));
        cfg.set("preset", head);
        return cfg;
    }
    return li::Config::fromString(arg);
}

int
runLinkExperiment(int argc, char **argv)
{
    sim::ScenarioSpec defaults;
    defaults.rate = 2;
    defaults.payloadBits = 1704;
    defaults.channelCfg = li::Config::fromString("snr_db=8,seed=1");

    sim::ScenarioSpec spec = defaults;
    li::Config cli; // the CLI-only keys (packets, shorthands)
    if (argc > 1) {
        li::Config raw = resolveArgConfig(argv[1]);
        li::Config rest;
        for (const auto &kv : raw.entries()) {
            bool mine = false;
            for (const char *key : kCliKeys)
                mine = mine || kv.first == key;
            (mine ? cli : rest).set(kv.first, kv.second);
        }
        spec = sim::parseScenarioSpecArg(rest.toString(), defaults);
    } else {
        std::fprintf(stderr,
                     "usage: %s <config-file | key=value,... | "
                     "preset>\n"
                     "running the default experiment instead\n\n",
                     argv[0]);
    }

    // The CLI's historical shorthand keys forward into the spec's
    // sub-configs by hand; everything else went through the parser.
    for (const char *key : {"doppler_hz", "num_taps"}) {
        if (cli.has(key))
            spec.channelCfg.set(key, cli.getString(key));
    }
    for (const char *key :
         {"block_len", "traceback_l", "traceback_k"}) {
        if (cli.has(key))
            spec.rx.decoderCfg.set(key, cli.getString(key));
    }

    const std::uint64_t packets =
        static_cast<std::uint64_t>(cli.getInt("packets", 100));
    const int threads = static_cast<int>(cli.getInt("threads", 0));

    std::printf("WiLIS experiment: %s, %s decoder, %s channel @ %.1f "
                "dB, %llu packets x %zu bits\n\n",
                phy::rateTable(spec.rate).name().c_str(),
                spec.rx.decoder.c_str(), spec.channel.c_str(),
                spec.snrDb(),
                static_cast<unsigned long long>(packets),
                spec.payloadBits);

    // BER + PER sweep on the zero-copy frame path; one accumulator
    // slot per worker the sweep will actually spawn.
    const size_t slots = static_cast<size_t>(
        sim::sweepWorkerCount(threads, packets));
    std::uint64_t packet_errors = 0;
    ErrorStats bits;
    {
        std::vector<ErrorStats> per_thread(slots);
        std::vector<std::uint64_t> pkt_err(slots, 0);
        sim::sweepFrames(
            spec, packets, threads,
            [&](int tid, const sim::FrameResult &res, std::uint64_t) {
                per_thread[static_cast<size_t>(tid)].bits +=
                    res.txPayload.size();
                per_thread[static_cast<size_t>(tid)].errors +=
                    res.bitErrors;
                pkt_err[static_cast<size_t>(tid)] += !res.ok;
            });
        for (size_t i = 0; i < per_thread.size(); ++i) {
            bits.merge(per_thread[i]);
            packet_errors += pkt_err[i];
        }
    }

    Table t({"metric", "value"});
    t.addRow({"scenario", spec.label()});
    t.addRow({"bits simulated", strprintf("%llu",
                                          static_cast<unsigned long long>(
                                              bits.bits))});
    t.addRow({"bit errors", strprintf("%llu",
                                      static_cast<unsigned long long>(
                                          bits.errors))});
    t.addRow({"BER", strprintf("%.3e", bits.ber())});
    t.addRow({"PER", strprintf("%.3f",
                               static_cast<double>(packet_errors) /
                                   static_cast<double>(packets))});

    // Architecture summary for the selected decoder.
    auto dec = decode::makeDecoder(spec.rx.decoder,
                                   spec.rx.decoderCfg);
    t.addRow({"decoder latency (cycles)",
              strprintf("%d", dec->pipelineLatencyCycles())});
    t.addRow({"decoder latency @60 MHz (us)",
              strprintf("%.2f",
                        synth::latencyUs(dec->pipelineLatencyCycles(),
                                         60.0))});
    synth::DecoderAreaParams ap;
    ap.softWidth = spec.rx.demapper.softWidth;
    ap.window = static_cast<int>(
        cli.getInt("block_len", spec.rx.decoderCfg.getInt(
                                    "block_len", 64)));
    std::string area_name = spec.rx.decoder == "bcjr-logmap"
                                ? "bcjr"
                                : spec.rx.decoder;
    t.addRow({"modeled area (LUTs)",
              strprintf("%ld",
                        synth::decoderTotal(area_name, ap).luts)});
    t.print();
    return 0;
}

int
runCampaignShardMode(int argc, char **argv)
{
    sim::RunRequest req;
    std::string spec_arg;
    bool have_spec = false;
    for (int a = 1; a < argc; ++a) {
        const std::string flag = argv[a];
        const auto next = [&]() -> std::string {
            if (a + 1 >= argc)
                wilis_fatal("%s needs an argument", flag.c_str());
            return argv[++a];
        };
        if (flag == "--network") {
            spec_arg = next();
            have_spec = true;
        } else if (flag == "--slots") {
            req.slots = static_cast<std::uint64_t>(
                std::strtoull(next().c_str(), nullptr, 10));
        } else if (flag == "--threads") {
            req.threads =
                static_cast<int>(std::atoi(next().c_str()));
        } else if (flag == "--shard") {
            const std::string v = next();
            const size_t slash = v.find('/');
            if (slash == std::string::npos)
                wilis_fatal("--shard wants I/N, got '%s'", v.c_str());
            req.shardIndex =
                std::atoi(v.substr(0, slash).c_str());
            req.shardCount =
                std::atoi(v.substr(slash + 1).c_str());
        } else if (flag == "--report") {
            req.reportFile = next();
        } else if (flag == "--trace") {
            req.traceFile = next();
        } else {
            wilis_fatal("unknown campaign flag '%s'", flag.c_str());
        }
    }
    if (!have_spec)
        wilis_fatal("--network <spec-arg> is required");
    req.spec = sim::parseNetworkSpecArg(spec_arg);

    const sim::RunReport rep = sim::runCampaignShard(req);
    std::uint64_t delivered = 0;
    std::uint64_t goodput_bits = 0;
    for (const auto &u : rep.units) {
        delivered += u.stats.delivered;
        goodput_bits += u.stats.goodputBits;
    }
    std::printf("campaign shard %d/%d: %zu/%d units, %llu slots, "
                "%llu frames delivered, %llu payload bits\n",
                req.shardIndex, req.shardCount, rep.units.size(),
                rep.unitsTotal,
                static_cast<unsigned long long>(rep.slots),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(goodput_bits));
    if (!req.reportFile.empty())
        std::printf("report -> %s\n", req.reportFile.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int a = 1; a < argc; ++a)
        if (std::string(argv[a]) == "--network")
            return runCampaignShardMode(argc, argv);
    return runLinkExperiment(argc, argv);
}
