/**
 * @file
 * Figure 7 reproduction: SoftRate MAC rate selection quality under a
 * 20 Hz Rayleigh fading channel with 10 dB mean AWGN SNR, for the
 * BCJR- and SOVA-based SoftPHY implementations.
 *
 * Protocol (section 4.4.2): the transmitter observes the predicted
 * PBER the receiver attaches to each (modeled) acknowledgement; if
 * it falls outside the operating range the rate steps down/up. The
 * optimal rate is the highest rate that would have delivered this
 * packet error-free -- computable because the pseudo-random noise
 * model replays identical noise and fading at every candidate rate
 * (here: common_noise=true fixes the noise sequence across time as
 * well, making success a deterministic function of the fade level).
 *
 * Reported alongside the paper's three categories:
 *  - a "genie" row (chosen = previous packet's optimal): the ceiling
 *    any feedback controller can reach given how often the
 *    per-packet optimal rate itself moves in this channel, and
 *  - a "within +-1" column, since most misses are single-step lag.
 *
 * Claims preserved (see EXPERIMENTS.md for the gap discussion):
 *  - both decoders track the optimal rate (most packets exactly,
 *    nearly all within one step),
 *  - SOVA underselects more often than BCJR by a few percent,
 *  - overselection is rare and comparable for both.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "mac/oracle.hh"
#include "mac/softrate.hh"
#include "softphy/softphy.hh"

using namespace wilis;
using namespace wilis::bench;

namespace {

const char *kChannelCfg =
    "snr_db=10,doppler_hz=20,seed=64222,packet_interval_us=200,"
    "common_noise=true,block_fading=true";

struct RunResult {
    mac::SelectionStats stats;
    std::uint64_t within_one = 0;
    std::uint64_t judged = 0;
};

RunResult
runSoftRate(const char *decoder, std::uint64_t packets,
            double pber_lo, double pber_hi)
{
    softphy::CalibrationSpec spec;
    spec.rx.decoder = decoder;
    spec.payloadBits = 1704;
    spec.packets = scaled(250, 60);
    spec.threads = 0;
    softphy::BerEstimator est = calibrateRateEstimator(spec);

    sim::TestbenchConfig base;
    base.rx = spec.rx;
    base.channel = "rayleigh";
    base.channelCfg = li::Config::fromString(kChannelCfg);

    mac::RateOracle oracle(base);
    mac::SoftRateMac::Config mc;
    mc.pberLo = pber_lo;
    mc.pberHi = pber_hi;
    mac::SoftRateMac softrate(mc);

    RunResult out;
    const size_t payload = 1704;
    for (std::uint64_t p = 0; p < packets; ++p) {
        phy::RateIndex chosen = softrate.currentRate();
        sim::PacketResult res = oracle.runAtRate(chosen, payload, p);
        double pber = est.packetBerForRate(chosen, res.rx.soft);
        softrate.onFeedback(pber);

        int optimal = oracle.optimalRate(payload, p);
        if (optimal < 0)
            continue; // no rate could deliver this packet
        out.stats.record(mac::classifySelection(chosen, optimal));
        out.within_one += std::abs(chosen - optimal) <= 1;
        ++out.judged;
    }
    return out;
}

mac::SelectionStats
runGenie(std::uint64_t packets)
{
    sim::TestbenchConfig base;
    base.rx.decoder = "viterbi"; // oracle decode only
    base.channel = "rayleigh";
    base.channelCfg = li::Config::fromString(kChannelCfg);
    mac::RateOracle oracle(base);
    mac::SelectionStats stats;
    int prev = -2;
    for (std::uint64_t p = 0; p < packets; ++p) {
        int optimal = oracle.optimalRate(1704, p);
        if (optimal >= 0 && prev >= 0)
            stats.record(mac::classifySelection(prev, optimal));
        prev = optimal >= 0 ? optimal : -2;
    }
    return stats;
}

} // namespace

int
main()
{
    banner("Figure 7: SoftRate selection quality, 20 Hz fading + "
           "10 dB AWGN");
    std::uint64_t packets = scaled(400, 80);

    Table t({"Decoder", "PBER band", "Underselect %", "Accurate %",
             "Overselect %", "within +-1 %", "packets"});
    for (const char *dec : {"bcjr", "sova"}) {
        // Paper band [1e-7, 1e-5] and the band retuned for this
        // pipeline's estimator floors (see EXPERIMENTS.md).
        for (auto [lo, hi] : {std::pair{1e-7, 1e-5}, {1e-6, 1e-4}}) {
            RunResult r = runSoftRate(dec, packets, lo, hi);
            t.addRow(
                {dec, strprintf("[%.0e, %.0e]", lo, hi),
                 strprintf("%.1f", r.stats.underPct()),
                 strprintf("%.1f", r.stats.accuratePct()),
                 strprintf("%.1f", r.stats.overPct()),
                 strprintf("%.1f", 100.0 *
                                       static_cast<double>(
                                           r.within_one) /
                                       static_cast<double>(r.judged)),
                 strprintf("%llu", static_cast<unsigned long long>(
                                       r.stats.total()))});
        }
    }
    mac::SelectionStats genie = runGenie(packets);
    t.addRow({"genie", "(prev optimal)",
              strprintf("%.1f", genie.underPct()),
              strprintf("%.1f", genie.accuratePct()),
              strprintf("%.1f", genie.overPct()), "-",
              strprintf("%llu",
                        static_cast<unsigned long long>(
                            genie.total()))});
    t.print();

    std::printf(
        "\npaper: both > 80%% accurate; SOVA underselects ~4%% more "
        "than BCJR; both overselect ~2%%.\n"
        "The 'genie' row is the feedback-controller ceiling in this "
        "channel realization: the per-packet\noptimal rate itself "
        "moves between consecutive packets, which bounds absolute "
        "accuracy. The\npaper-relative claims (SOVA underselects "
        "more, overselect rare, selections within one step)\nare "
        "checked in tests/test_softrate_experiment.cc.\n");
    return 0;
}
