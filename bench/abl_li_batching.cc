/**
 * @file
 * Latency-insensitive batching ablation (sections 2 and 5): LI
 * decoupling lets WiLIS move data between the FPGA and the host in
 * large pipelined transfers and overlap all agents, which "increases
 * our throughput by approximately one order of magnitude" over a
 * lock-step (SCE-MI style) discipline that synchronizes on every
 * exchange. Sweep the batch size in both disciplines.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "platform/cosim.hh"

using namespace wilis;
using namespace wilis::bench;

int
main()
{
    banner("LI batching vs lock-step co-simulation (QAM-16 1/2)");

    sim::TestbenchConfig tb;
    tb.rate = 4;
    tb.rx.decoder = "viterbi";
    tb.channelCfg = li::Config::fromString("snr_db=30,seed=3");

    std::uint64_t packets = scaled(8, 2);

    Table t({"batch (samples)", "discipline", "sim speed (Mb/s)",
             "link transfers", "wall breakdown hw/sw/link (us)"});

    double li_best = 0.0;
    double lockstep_fine = 0.0;
    // batch=16 models fine-grained SCE-MI style clock gating; 80 is
    // one OFDM symbol per exchange.
    for (std::uint64_t batch : {16ull, 80ull, 512ull, 4096ull,
                                32768ull}) {
        for (bool decoupled : {true, false}) {
            platform::CosimDriver::Params p;
            p.batchSamples = batch;
            p.decoupled = decoupled;
            platform::CosimDriver driver(tb, p);
            auto s = driver.run(1704, packets);
            t.addRow({strprintf("%llu",
                                static_cast<unsigned long long>(
                                    batch)),
                      decoupled ? "LI (overlapped)" : "lock-step",
                      strprintf("%.3f", s.simSpeedMbps()),
                      strprintf("%llu",
                                static_cast<unsigned long long>(
                                    s.transfers)),
                      strprintf("%.0f/%.0f/%.0f", s.hwUs, s.swUs,
                                s.linkUs)});
            if (decoupled)
                li_best = std::max(li_best, s.simSpeedMbps());
            if (!decoupled && batch == 16)
                lockstep_fine = s.simSpeedMbps();
        }
    }
    t.print();
    std::printf("\nLI (large pipelined transfers) vs fine-grained "
                "lock-step: %.1fx (paper: ~one order of magnitude)\n",
                li_best / lockstep_fine);
    return 0;
}
