/**
 * @file
 * SW-BCJR block-size ablation (section 4.3.2): the sliding-window
 * approximation "shows reasonable performance if block size n is
 * sufficiently large (larger than 32)", and section 4.4.3 adds that
 * growing past 64 buys nothing. Sweep n and report decoded BER at a
 * fixed noisy operating point, plus the latency and area each n
 * costs.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/sweep.hh"
#include "synth/area.hh"

using namespace wilis;
using namespace wilis::bench;

int
main()
{
    banner("SW-BCJR block size ablation (QPSK 1/2, AWGN 3 dB)");

    std::uint64_t packets = scaled(300, 60);
    Table t({"block n", "BER", "vs n=64", "latency (cycles)",
             "modeled regs"});

    double ber64 = 0.0;
    struct Row {
        int n;
        double ber;
    };
    std::vector<Row> rows;
    for (int n : {8, 16, 32, 64, 128}) {
        sim::TestbenchConfig cfg;
        cfg.rate = 2;
        cfg.rx.decoder = "bcjr";
        cfg.rx.decoderCfg =
            li::Config::fromString(strprintf("block_len=%d", n));
        cfg.channelCfg = li::Config::fromString("snr_db=3,seed=88");
        ErrorStats s = sim::measureBer(
            sim::ScenarioSpec::fromTestbench(cfg, 1704), packets, 0);
        rows.push_back({n, s.ber()});
        if (n == 64)
            ber64 = s.ber();
    }
    for (const auto &r : rows) {
        synth::DecoderAreaParams p;
        p.window = r.n;
        t.addRow({strprintf("%d", r.n), strprintf("%.3e", r.ber),
                  ber64 > 0.0 ? strprintf("%.2fx", r.ber / ber64)
                              : "-",
                  strprintf("%d", 2 * r.n + 7),
                  strprintf("%ld",
                            synth::bcjrAreaReport(p)[0]
                                .area.registers)});
    }
    t.print();
    std::printf("\npaper: n >= 32 is required for reasonable "
                "performance; n > 64 gives no improvement while "
                "latency and buffers grow linearly.\n");
    return 0;
}
