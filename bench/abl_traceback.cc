/**
 * @file
 * SOVA traceback-length ablation (section 4.4.3): "we use a backward
 * path length of 64 for SOVA... increasing these values provides no
 * performance improvement." Sweep l = k and report BER, soft-output
 * quality (does the hint ordering hold), latency and area.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/sweep.hh"
#include "softphy/softphy.hh"
#include "synth/area.hh"

using namespace wilis;
using namespace wilis::bench;

int
main()
{
    banner("SOVA traceback length ablation (QPSK 1/2, AWGN 3 dB)");

    std::uint64_t packets = scaled(300, 60);
    Table t({"l = k", "BER", "latency (cycles)", "modeled LUTs"});
    for (int w : {8, 16, 32, 64, 128}) {
        sim::TestbenchConfig cfg;
        cfg.rate = 2;
        cfg.rx.decoder = "sova";
        cfg.rx.decoderCfg = li::Config::fromString(
            strprintf("traceback_l=%d,traceback_k=%d", w, w));
        cfg.channelCfg = li::Config::fromString("snr_db=3,seed=88");
        ErrorStats s = sim::measureBer(
            sim::ScenarioSpec::fromTestbench(cfg, 1704), packets, 0);

        synth::DecoderAreaParams p;
        p.window = w;
        t.addRow({strprintf("%d", w), strprintf("%.3e", s.ber()),
                  strprintf("%d", 2 * w + 12),
                  strprintf("%ld",
                            synth::sovaAreaReport(p)[0].area.luts)});
    }
    t.print();
    std::printf("\npaper: performance saturates by l = k = 64; "
                "longer tracebacks only cost area and latency.\n");
    return 0;
}
