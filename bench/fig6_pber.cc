/**
 * @file
 * Figure 6 reproduction: actual per-packet BER vs the SoftPHY
 * estimator's predicted per-packet BER, QAM-16 1/2, 1704-bit
 * packets, AWGN with varying SNR.
 *
 * The paper's claims to verify:
 *  - predictions cluster around the ideal actual == predicted line,
 *  - a slight underestimation appears at high BERs (>= 1e-1), caused
 *    by the constant mid-band SNR adjustment (section 4.2): high
 *    BERs come from SNRs *below* the calibration constant, where the
 *    estimator under-reads the error probability.
 */

#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/sweep.hh"
#include "softphy/softphy.hh"

using namespace wilis;
using namespace wilis::bench;

int
main()
{
    banner("Figure 6: actual vs predicted per-packet BER "
           "(QAM-16 1/2, AWGN, 1704-bit packets)");

    // Calibrate the estimator once at the mid-band SNR constant.
    softphy::CalibrationSpec spec;
    spec.rx.decoder = "bcjr";
    spec.payloadBits = 1704;
    spec.packets = scaled(400, 100);
    spec.threads = 0;
    softphy::BerTable table =
        calibrateTable(phy::Modulation::QAM16, spec);
    softphy::BerEstimator est;
    est.setTable(phy::Modulation::QAM16, table);
    std::printf("calibrated at %.1f dB, eq.5 scale %.4f\n",
                softphy::midBandSnrDb(phy::Modulation::QAM16),
                table.scale());

    // Sweep SNR so packets land across the predicted-PBER decades,
    // and bin (predicted, actual) pairs by predicted decade.
    const int kBins = 14; // decades 1e-7 .. 1e0, half-decade bins
    std::vector<RunningStats> actual_by_bin(kBins);
    std::vector<RunningStats> predicted_by_bin(kBins);

    auto bin_of = [&](double pber) {
        if (pber <= 0.0)
            return 0;
        double d = std::log10(pber) + 7.0; // -7 -> 0
        int b = static_cast<int>(d * 2.0);
        if (b < 0)
            b = 0;
        if (b >= kBins)
            b = kBins - 1;
        return b;
    };

    const std::uint64_t packets_per_snr = scaled(120, 30);
    for (double snr = 4.5; snr <= 11.01; snr += 0.5) {
        sim::TestbenchConfig cfg;
        cfg.rate = 4;
        cfg.rx = spec.rx;
        cfg.channelCfg = li::Config::fromString(
            strprintf("snr_db=%f,seed=606", snr));
        sim::sweepFrames(
            sim::ScenarioSpec::fromTestbench(cfg, 1704),
            packets_per_snr, 0,
            [&](int, const sim::FrameResult &res, std::uint64_t) {
                double predicted = est.packetBer(
                    phy::Modulation::QAM16, res.rx.soft);
                double actual =
                    static_cast<double>(res.bitErrors) / 1704.0;
                int b = bin_of(predicted);
                // RunningStats is not thread-safe; serialize.
                static std::mutex m;
                std::lock_guard<std::mutex> lk(m);
                actual_by_bin[static_cast<size_t>(b)].add(actual);
                predicted_by_bin[static_cast<size_t>(b)].add(
                    predicted);
            });
    }

    Table t({"predicted PBER (bin mean)", "packets", "actual mean",
             "actual stddev", "ratio act/pred"});
    for (int b = 0; b < kBins; ++b) {
        const auto &act = actual_by_bin[static_cast<size_t>(b)];
        const auto &pred = predicted_by_bin[static_cast<size_t>(b)];
        if (act.count() < 3)
            continue;
        double ratio = pred.mean() > 0.0
                           ? act.mean() / pred.mean()
                           : 0.0;
        t.addRow({strprintf("%.3e", pred.mean()),
                  strprintf("%llu", static_cast<unsigned long long>(
                                        act.count())),
                  strprintf("%.3e", act.mean()),
                  strprintf("%.3e", act.stddev()),
                  strprintf("%.2f", ratio)});
    }
    t.print();
    std::printf("\nideal line: ratio act/pred == 1.00; the paper "
                "reports clustering around the line with slight\n"
                "underestimation (ratio > 1) at PBER >= 1e-1 from "
                "the constant-SNR simplification.\n");
    return 0;
}
