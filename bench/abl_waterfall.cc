/**
 * @file
 * Decoded BER waterfalls: BER vs SNR for every 802.11a/g rate
 * (BCJR), plus a decoder comparison at one rate. Not a figure of the
 * paper, but the baseline characterization any user of the simulator
 * needs, and the data behind the "few dB per modulation band"
 * observation that justifies the fixed SNR constant of section 4.2.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/sweep.hh"

using namespace wilis;
using namespace wilis::bench;

int
main()
{
    banner("Decoded BER vs SNR, all rates (BCJR, 1000-bit packets)");

    std::uint64_t packets = scaled(60, 20);
    Table t({"SNR (dB)", "BPSK1/2", "BPSK3/4", "QPSK1/2", "QPSK3/4",
             "QAM16-1/2", "QAM16-3/4", "QAM64-2/3", "QAM64-3/4"});
    for (double snr = -2.0; snr <= 18.01; snr += 2.0) {
        std::vector<std::string> row;
        row.push_back(strprintf("%.0f", snr));
        for (int r = 0; r < phy::kNumRates; ++r) {
            sim::TestbenchConfig cfg;
            cfg.rate = r;
            cfg.rx.decoder = "bcjr";
            cfg.channelCfg = li::Config::fromString(
                strprintf("snr_db=%f,seed=77", snr));
            ErrorStats s = sim::measureBer(
                sim::ScenarioSpec::fromTestbench(cfg, 1000),
                packets, 0);
            row.push_back(s.errors ? strprintf("%.1e", s.ber())
                                   : std::string("-"));
        }
        t.addRow(row);
    }
    t.print();

    banner("Decoder comparison at QPSK 1/2");
    Table d({"SNR (dB)", "viterbi", "sova", "bcjr", "bcjr-logmap"});
    for (double snr = 1.0; snr <= 5.01; snr += 1.0) {
        std::vector<std::string> row;
        row.push_back(strprintf("%.0f", snr));
        for (const char *dec :
             {"viterbi", "sova", "bcjr", "bcjr-logmap"}) {
            sim::TestbenchConfig cfg;
            cfg.rate = 2;
            cfg.rx.decoder = dec;
            cfg.channelCfg = li::Config::fromString(
                strprintf("snr_db=%f,seed=78", snr));
            ErrorStats s = sim::measureBer(
                sim::ScenarioSpec::fromTestbench(cfg, 1000),
                packets, 0);
            row.push_back(s.errors ? strprintf("%.1e", s.ber())
                                   : std::string("-"));
        }
        d.addRow(row);
    }
    d.print();
    std::printf("\neach modulation's waterfall spans only a few dB "
                "(the section 4.2 observation); the decoders\ntrack "
                "each other closely on hard decisions, differing in "
                "soft-output quality (Figure 5).\n");
    return 0;
}
