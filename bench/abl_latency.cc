/**
 * @file
 * Latency ablation: measure the cycle-counted LI pipelines against
 * the closed-form latency expressions of sections 4.3.1/4.3.2
 * (SOVA: l + k + 12, BCJR: 2n + 7) across window sizes, and report
 * microsecond latencies at the 60 MHz decoder clock against the
 * 25 us 802.11a/g budget.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/li_pipeline.hh"

using namespace wilis;
using namespace wilis::bench;
using namespace wilis::sim;

int
main(int argc, char **argv)
{
    const std::string json_path = jsonPathFromArgs(argc, argv);
    JsonReport report("abl_latency");
    report.meta("bench_scale", strprintf("%g", benchScale()));

    banner("SOVA pipeline latency: measured vs l + k + 12");
    Table sova({"l", "k", "formula", "measured (cycles)",
                "us @ 60 MHz", "fits 25 us budget"});
    for (auto [l, k] : {std::pair{16, 16}, {32, 32}, {48, 64},
                        {64, 64}, {96, 96}, {128, 128}}) {
        li::Scheduler sched;
        li::ClockDomain *clk = sched.createDomain("clk", 60.0);
        LiPipeline pipe = buildSovaPipeline(sched, clk, l, k);
        int measured = measurePipelineLatency(sched, pipe, 300);
        double us = static_cast<double>(measured) / 60.0;
        sova.addRow({strprintf("%d", l), strprintf("%d", k),
                     strprintf("%d", l + k + 12),
                     strprintf("%d", measured),
                     strprintf("%.2f", us),
                     us < 25.0 ? "yes" : "NO"});
    }
    sova.print();

    banner("BCJR pipeline latency: measured vs 2n + 7");
    Table bcjr({"n", "formula", "measured (cycles)", "us @ 60 MHz",
                "fits 25 us budget"});
    for (int n : {16, 32, 64, 128, 256}) {
        li::Scheduler sched;
        li::ClockDomain *clk = sched.createDomain("clk", 60.0);
        LiPipeline pipe = buildBcjrPipeline(sched, clk, n);
        int measured = measurePipelineLatency(sched, pipe, 600);
        double us = static_cast<double>(measured) / 60.0;
        bcjr.addRow({strprintf("%d", n), strprintf("%d", 2 * n + 7),
                     strprintf("%d", measured),
                     strprintf("%.2f", us),
                     us < 25.0 ? "yes" : "NO"});
    }
    bcjr.print();

    banner("Throughput: one decoded bit per decoder cycle");
    // At 60 MHz both pipelines sustain 60 Mb/s -- above the 54 Mb/s
    // top 802.11a/g rate (section 4.4.3's 60 Mb/s target).
    li::Scheduler sched;
    li::ClockDomain *clk = sched.createDomain("clk", 60.0);
    LiPipeline pipe = buildSovaPipeline(sched, clk, 64, 64);
    const int tokens = 2000;
    std::vector<LiToken> in(static_cast<size_t>(tokens));
    pipe.source->feed(in);
    sched.runUntilIdle(16);
    double cycles_per_token =
        static_cast<double>(clk->cycles() - 140 - 20) / tokens;
    std::printf("SOVA steady-state: %.3f cycles/bit -> %.1f Mb/s @ "
                "60 MHz (need 54)\n",
                cycles_per_token, 60.0 / cycles_per_token);
    report.metric("sova_cycles_per_bit", cycles_per_token, "cycles",
                  /*higher_is_better=*/false);
    report.metric("sova_modeled_mbps", 60.0 / cycles_per_token,
                  "Mb/s");
    report.writeIfRequested(json_path);
    return 0;
}
