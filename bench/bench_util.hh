/**
 * @file
 * Shared helpers for the bench binaries: workload scaling via the
 * WILIS_BENCH_SCALE environment variable (default 1.0; raise it on
 * faster machines to tighten the statistics), wall-clock timing, and
 * machine-readable result export -- every bench accepts
 * `--json <path>` and writes its headline numbers as a JSON report
 * the CI perf-regression harness (tools/check_bench_regression.py)
 * consumes and tracks across PRs.
 */

#ifndef WILIS_BENCH_BENCH_UTIL_HH
#define WILIS_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace wilis {
namespace bench {

/** Workload multiplier from WILIS_BENCH_SCALE (default 1.0). */
inline double
benchScale()
{
    const char *env = std::getenv("WILIS_BENCH_SCALE");
    if (!env)
        return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

/** @return count scaled by benchScale(), at least @p min_count. */
inline std::uint64_t
scaled(std::uint64_t count, std::uint64_t min_count = 1)
{
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(count) * benchScale());
    return v < min_count ? min_count : v;
}

/** Simple wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start(clock::now()) {}

    /** Seconds since construction or last reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start)
            .count();
    }

    void reset() { start = clock::now(); }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start;
};

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Extract the `--json <path>` (or `--json=<path>`) argument.
 * @return the path, or "" when the flag is absent.
 */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            return argv[i + 1];
        if (arg.rfind("--json=", 0) == 0)
            return arg.substr(7);
    }
    return "";
}

/**
 * Machine-readable bench report. Collect metrics while the bench
 * runs, then write() once at the end:
 *
 *     { "bench": "...", "meta": {"k": "v", ...},
 *       "metrics": [ {"name": "...", "value": 1.5,
 *                     "unit": "Mb/s", "higher_is_better": true},
 *                    ... ] }
 *
 * Metric names are the regression-check contract: keep them stable
 * across PRs so the trajectory stays comparable, and only record
 * numbers whose regressions are meaningful (throughputs, speedups).
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench_name)
        : bench(std::move(bench_name))
    {}

    /** Attach a context string (backend, scale, host...). */
    void
    meta(const std::string &key, const std::string &value)
    {
        metas.emplace_back(key, value);
    }

    /** Record one numeric result. */
    void
    metric(const std::string &name, double value,
           const std::string &unit, bool higher_is_better = true)
    {
        metrics.push_back({name, unit, value, higher_is_better});
    }

    /** Write the report; returns false (with a message) on failure. */
    bool
    write(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write JSON report to %s\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"meta\": {",
                     escape(bench).c_str());
        for (size_t i = 0; i < metas.size(); ++i) {
            std::fprintf(f, "%s\n    \"%s\": \"%s\"",
                         i ? "," : "", escape(metas[i].first).c_str(),
                         escape(metas[i].second).c_str());
        }
        std::fprintf(f, "\n  },\n  \"metrics\": [");
        for (size_t i = 0; i < metrics.size(); ++i) {
            const Metric &m = metrics[i];
            std::fprintf(f,
                         "%s\n    {\"name\": \"%s\", \"value\": %.6g,"
                         " \"unit\": \"%s\","
                         " \"higher_is_better\": %s}",
                         i ? "," : "", escape(m.name).c_str(),
                         m.value, escape(m.unit).c_str(),
                         m.higherIsBetter ? "true" : "false");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote JSON report: %s\n", path.c_str());
        return true;
    }

    /** Write if @p path is non-empty (the --json plumbing). */
    bool
    writeIfRequested(const std::string &path) const
    {
        return path.empty() ? true : write(path);
    }

  private:
    struct Metric {
        std::string name;
        std::string unit;
        double value;
        bool higherIsBetter;
    };

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    std::string bench;
    std::vector<std::pair<std::string, std::string>> metas;
    std::vector<Metric> metrics;
};

} // namespace bench
} // namespace wilis

#endif // WILIS_BENCH_BENCH_UTIL_HH
