/**
 * @file
 * Shared helpers for the bench binaries: workload scaling via the
 * WILIS_BENCH_SCALE environment variable (default 1.0; raise it on
 * faster machines to tighten the statistics) and wall-clock timing.
 */

#ifndef WILIS_BENCH_BENCH_UTIL_HH
#define WILIS_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace wilis {
namespace bench {

/** Workload multiplier from WILIS_BENCH_SCALE (default 1.0). */
inline double
benchScale()
{
    const char *env = std::getenv("WILIS_BENCH_SCALE");
    if (!env)
        return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

/** @return count scaled by benchScale(), at least @p min_count. */
inline std::uint64_t
scaled(std::uint64_t count, std::uint64_t min_count = 1)
{
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(count) * benchScale());
    return v < min_count ? min_count : v;
}

/** Simple wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start(clock::now()) {}

    /** Seconds since construction or last reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start)
            .count();
    }

    void reset() { start = clock::now(); }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start;
};

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace bench
} // namespace wilis

#endif // WILIS_BENCH_BENCH_UTIL_HH
