/**
 * @file
 * Shared helpers for the bench binaries: workload scaling via the
 * WILIS_BENCH_SCALE environment variable (default 1.0; raise it on
 * faster machines to tighten the statistics), wall-clock timing, and
 * machine-readable result export -- every bench accepts
 * `--json <path>` and writes its headline numbers as a JSON report
 * the CI perf-regression harness (tools/check_bench_regression.py)
 * consumes and tracks across PRs.
 */

#ifndef WILIS_BENCH_BENCH_UTIL_HH
#define WILIS_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"

namespace wilis {
namespace bench {

/** Workload multiplier from WILIS_BENCH_SCALE (default 1.0). */
inline double
benchScale()
{
    const char *env = std::getenv("WILIS_BENCH_SCALE");
    if (!env)
        return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

/** @return count scaled by benchScale(), at least @p min_count. */
inline std::uint64_t
scaled(std::uint64_t count, std::uint64_t min_count = 1)
{
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(count) * benchScale());
    return v < min_count ? min_count : v;
}

/** Simple wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start(clock::now()) {}

    /** Seconds since construction or last reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start)
            .count();
    }

    void reset() { start = clock::now(); }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start;
};

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Extract the `--json <path>` (or `--json=<path>`) argument.
 * @return the path, or "" when the flag is absent.
 */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            return argv[i + 1];
        if (arg.rfind("--json=", 0) == 0)
            return arg.substr(7);
    }
    return "";
}

/**
 * Machine-readable bench report. Collect metrics while the bench
 * runs, then write() once at the end:
 *
 *     { "bench": "...", "meta": {"k": "v", ...},
 *       "metrics": [ {"name": "...", "value": 1.5,
 *                     "unit": "Mb/s", "higher_is_better": true},
 *                    ... ] }
 *
 * Metric names are the regression-check contract: keep them stable
 * across PRs so the trajectory stays comparable, and only record
 * numbers whose regressions are meaningful (throughputs, speedups).
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench_name)
        : bench(std::move(bench_name))
    {}

    /** Attach a context string (backend, scale, host...). */
    void
    meta(const std::string &key, const std::string &value)
    {
        metas.emplace_back(key, value);
    }

    /** Record one numeric result. */
    void
    metric(const std::string &name, double value,
           const std::string &unit, bool higher_is_better = true)
    {
        metrics.push_back({name, unit, value, higher_is_better});
    }

    /** Write the report; returns false (with a message) on failure. */
    bool
    write(const std::string &path) const
    {
        // Emission rides the shared deterministic writer
        // (common/json.hh) -- the same stable-key-order backend the
        // campaign RunReport uses, so every machine-readable report
        // in the tree serializes one way.
        json::JsonWriter w;
        w.beginObject();
        w.key("bench").value(bench);
        w.key("meta").beginObject();
        for (const auto &m : metas)
            w.key(m.first).value(m.second);
        w.endObject();
        w.key("metrics").beginArray();
        for (const Metric &m : metrics) {
            w.beginObject();
            w.key("name").value(m.name);
            w.key("value").valueDouble(m.value, "%.6g");
            w.key("unit").value(m.unit);
            w.key("higher_is_better").valueBool(m.higherIsBetter);
            w.endObject();
        }
        w.endArray();
        w.endObject();

        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write JSON report to %s\n",
                         path.c_str());
            return false;
        }
        const std::string &text = w.str();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("wrote JSON report: %s\n", path.c_str());
        return true;
    }

    /** Write if @p path is non-empty (the --json plumbing). */
    bool
    writeIfRequested(const std::string &path) const
    {
        return path.empty() ? true : write(path);
    }

  private:
    struct Metric {
        std::string name;
        std::string unit;
        double value;
        bool higherIsBetter;
    };

    std::string bench;
    std::vector<std::pair<std::string, std::string>> metas;
    std::vector<Metric> metrics;
};

} // namespace bench
} // namespace wilis

#endif // WILIS_BENCH_BENCH_UTIL_HH
