/**
 * @file
 * Figure 8 reproduction: synthesis-area comparison of the BCJR,
 * SOVA, and Viterbi decoders (64 states, window/block 64, all
 * storage forced to registers).
 *
 * We cannot run Synplify Pro against a Virtex-5; the numbers come
 * from the calibrated architectural area model (src/synth). The
 * preserved claims: BCJR ~ 2x SOVA ~ 4x Viterbi in LUTs, BCJR's
 * registers dominated by the reversal buffers, both soft decoders
 * shrinking with the backward-analysis length, and the SoftPHY
 * addition costing ~10% of a transceiver.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "synth/area.hh"

using namespace wilis;
using namespace wilis::bench;
using namespace wilis::synth;

namespace {

struct PaperRow {
    const char *decoder;
    const char *name;
    long luts;
    long regs;
};

// Figure 8 as published; the paper reports sub-blocks only for the
// rows listed here.
const PaperRow kPaper[] = {
    {"BCJR", "BCJR", 32936, 38420},
    {"BCJR", "Soft Decision Unit", 6561, 822},
    {"BCJR", "Initial Rev. Buf.", 804, 2608},
    {"BCJR", "Final Rev. Buf.", 8651, 30048},
    {"BCJR", "Path Metric Unit", 4672, 0},
    {"BCJR", "Branch Metric Unit", 63, 41},
    {"SOVA", "SOVA", 15114, 15168},
    {"SOVA", "Soft TU", 13456, 13402},
    {"SOVA", "Soft Path Detect", 7362, 4706},
    {"Viterbi", "Viterbi", 7569, 4538},
    {"Viterbi", "Traceback Unit", 5144, 3927},
};

long
paperValue(const std::string &decoder, const std::string &name,
           bool regs)
{
    for (const auto &r : kPaper) {
        if (decoder == r.decoder && name == r.name)
            return regs ? r.regs : r.luts;
    }
    return -1;
}

void
printReport(const std::vector<AreaRow> &rows)
{
    const std::string &decoder = rows[0].name;
    Table t({"Module", "LUTs", "Registers", "paper LUTs",
             "paper Registers"});
    for (const auto &r : rows) {
        std::string name =
            (r.indent ? "  " : "") + r.name;
        long pl = paperValue(decoder, r.name, false);
        long pr = paperValue(decoder, r.name, true);
        t.addRow({name, strprintf("%ld", r.area.luts),
                  strprintf("%ld", r.area.registers),
                  pl >= 0 ? strprintf("%ld", pl) : "-",
                  pr >= 0 ? strprintf("%ld", pr) : "-"});
    }
    t.print();
}

} // namespace

int
main()
{
    banner("Figure 8: decoder synthesis results (modeled; 60 MHz "
           "target, storage as registers)");
    DecoderAreaParams p; // paper defaults

    printReport(bcjrAreaReport(p));
    std::printf("\n");
    printReport(sovaAreaReport(p));
    std::printf("\n");
    printReport(viterbiAreaReport(p));

    banner("Section 4.4.3 ratios");
    auto vit = viterbiAreaReport(p)[0].area;
    auto sova = sovaAreaReport(p)[0].area;
    auto bcjr = bcjrAreaReport(p)[0].area;
    std::printf("BCJR / SOVA LUTs:    %.2fx (paper: ~2x)\n",
                static_cast<double>(bcjr.luts) /
                    static_cast<double>(sova.luts));
    std::printf("SOVA / Viterbi LUTs: %.2fx (paper: ~2x)\n",
                static_cast<double>(sova.luts) /
                    static_cast<double>(vit.luts));

    banner("Area vs backward-analysis length (section 4.4.3)");
    Table t({"window/block n", "SOVA LUTs", "SOVA regs", "BCJR LUTs",
             "BCJR regs"});
    for (int n : {16, 32, 64, 128}) {
        DecoderAreaParams q = p;
        q.window = n;
        t.addRow({strprintf("%d", n),
                  strprintf("%ld", sovaAreaReport(q)[0].area.luts),
                  strprintf("%ld",
                            sovaAreaReport(q)[0].area.registers),
                  strprintf("%ld", bcjrAreaReport(q)[0].area.luts),
                  strprintf("%ld",
                            bcjrAreaReport(q)[0].area.registers)});
    }
    t.print();

    banner("Conclusion: SoftPHY cost inside a full transceiver");
    for (const char *dec : {"sova", "bcjr"}) {
        std::printf("%-6s + BER estimator: +%.1f%% of a %ld-LUT "
                    "transceiver (paper: ~10%%)\n",
                    dec, softPhyOverheadPct(dec, p),
                    baselineTransceiverLuts());
    }

    banner("Latency (sections 4.3.1/4.3.2)");
    std::printf("SOVA l=k=64: %d cycles = %.2f us @ 60 MHz "
                "(paper: 140 cycles, 2.3 us)\n",
                64 + 64 + 12, latencyUs(140, 60.0));
    std::printf("BCJR n=64:   %d cycles = %.2f us @ 60 MHz "
                "(paper: 135 cycles, 2.2 us)\n",
                2 * 64 + 7, latencyUs(135, 60.0));
    std::printf("802.11a/g budget: 25 us -> both fit easily\n");
    return 0;
}
