/**
 * @file
 * Figure 2 reproduction: simulation speeds of the eight 802.11a/g
 * rates under the co-simulation arrangement.
 *
 * Three views are reported:
 *  1. the paper's published numbers (reference),
 *  2. the analytic co-simulation model evaluated with the paper's
 *     platform parameters (35 MHz FPGA, 700 MB/s FSB, software AWGN
 *     channel at ~6.9 Msamples/s on a quad-core Xeon) -- this is the
 *     row the shape claim rests on,
 *  3. this host's measured speeds: the software channel throughput
 *     measured live, fed into the same model, plus the raw
 *     full-pipeline (tx+channel+rx) simulation speed of the kernels.
 *
 * Also reports the link-bandwidth accounting of section 3 (~55 MB/s
 * of 700 MB/s used => the software channel, not the link, is the
 * bottleneck).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/cpu_features.hh"
#include "common/kernels.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "platform/cosim.hh"
#include "sim/li_transceiver.hh"
#include "sim/sweep.hh"

using namespace wilis;
using namespace wilis::bench;

namespace {

// Figure 2 as published.
const double kPaperMbps[phy::kNumRates] = {2.033, 2.953, 4.040,
                                           6.036, 8.483, 12.725,
                                           15.960, 22.244};

double
measureHostSimSpeed(phy::RateIndex rate, std::uint64_t bits,
                    kernels::Backend backend)
{
    // This bench's whole purpose is backend comparison, so select
    // the table directly -- bypassing the WILIS_KERNEL_BACKEND
    // precedence that applyPolicy honors -- and leave the spec at
    // "auto" so the testbench constructor keeps the selection.
    if (!kernels::setBackend(backend))
        wilis_fatal("backend %s unsupported on this host",
                    kernels::backendName(backend));
    sim::TestbenchConfig cfg;
    cfg.rate = rate;
    cfg.rx.decoder = "viterbi";
    cfg.channelCfg = li::Config::fromString("snr_db=10,seed=7");
    const size_t payload = 1704;
    std::uint64_t packets = bits / payload + 1;
    Stopwatch sw;
    ErrorStats s = sim::measureBer(
        sim::ScenarioSpec::fromTestbench(cfg, payload), packets, 0);
    return static_cast<double>(s.bits) / sw.seconds() / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = jsonPathFromArgs(argc, argv);
    JsonReport report("fig2_simspeed");
    const kernels::Backend best = kernels::availableBackends().back();
    const std::string best_backend = kernels::backendName(best);
    if (std::getenv("WILIS_KERNEL_BACKEND"))
        std::printf("note: WILIS_KERNEL_BACKEND is ignored here -- "
                    "this bench selects backends explicitly\n");
    report.meta("backend", best_backend);
    report.meta("cpu", cpu::featureString());
    report.meta("bench_scale", strprintf("%g", benchScale()));

    banner("Figure 2: simulation speeds of the 802.11a/g rates");

    // Host-measured software channel throughput (the paper's
    // bottleneck component), single- and multi-threaded.
    li::Config awgn_cfg = li::Config::fromString("snr_db=10,seed=1");
    double host_msps_1t =
        platform::measureChannelThroughputMsps("awgn", awgn_cfg, 0.2);
    li::Config awgn_mt = li::Config::fromString(
        "snr_db=10,seed=1,threads=0");
    double host_msps_mt =
        platform::measureChannelThroughputMsps("awgn", awgn_mt, 0.2);

    platform::CosimModel paper_model; // paper parameters
    platform::CosimModel host_model = paper_model;
    host_model.swChannelMsps = host_msps_mt;

    Table t({"Modulation", "Paper (Mb/s)", "Model (Mb/s)", "Model %",
             "Host co-sim (Mb/s)", "Host kernel (Mb/s)", "Kernel %"});
    std::uint64_t bits = scaled(400000, 50000);
    for (int r = 0; r < phy::kNumRates; ++r) {
        const phy::RateParams &rp = phy::rateTable(r);
        double model = paper_model.simSpeedMbps(rp);
        double host_cosim = host_model.simSpeedMbps(rp);
        double kernel = measureHostSimSpeed(r, bits, best);
        report.metric(strprintf("sim_speed_r%d_mbps", r), kernel,
                      "Mb/s");
        t.addRow({rp.name(),
                  strprintf("%.3f (%.1f%%)", kPaperMbps[r],
                            100.0 * kPaperMbps[r] / rp.lineRateMbps),
                  strprintf("%.3f", model),
                  strprintf("%.1f%%",
                            100.0 * model / rp.lineRateMbps),
                  strprintf("%.3f", host_cosim),
                  strprintf("%.3f", kernel),
                  strprintf("%.1f%%",
                            100.0 * kernel / rp.lineRateMbps)});
    }
    t.print();
    report.metric("channel_msps_1t", host_msps_1t, "Msamples/s");
    report.metric("channel_msps_mt", host_msps_mt, "Msamples/s");

    // SIMD kernel backend A/B: the same full pipeline (tx + channel
    // + rx) with the scalar reference kernels versus the widest
    // backend the host supports. Backends are bit-exact, so this
    // ratio is pure execution speed -- the per-link cost reduction
    // that lets scenario sweeps and dense cells scale.
    banner(strprintf("SIMD kernel backend A/B (scalar vs %s)",
                     best_backend.c_str()));
    Table st({"Modulation", "scalar (Mb/s)",
              best_backend + " (Mb/s)", "speedup"});
    for (int r : {1, 4, 7}) {
        const phy::RateParams &rp = phy::rateTable(r);
        double scalar_mbps =
            measureHostSimSpeed(r, bits, kernels::Backend::Scalar);
        double simd_mbps = measureHostSimSpeed(r, bits, best);
        double speedup =
            scalar_mbps > 0.0 ? simd_mbps / scalar_mbps : 0.0;
        report.metric(strprintf("sim_speed_scalar_r%d_mbps", r),
                      scalar_mbps, "Mb/s");
        report.metric(strprintf("simd_speedup_r%d", r), speedup,
                      "x");
        st.addRow({rp.name(), strprintf("%.3f", scalar_mbps),
                   strprintf("%.3f", simd_mbps),
                   strprintf("%.2fx", speedup)});
    }
    st.print();

    banner("Section 3: bandwidth accounting");
    std::printf("software channel throughput (1 thread):   %.2f "
                "Msamples/s\n",
                host_msps_1t);
    std::printf("software channel throughput (all cores):  %.2f "
                "Msamples/s\n",
                host_msps_mt);
    std::printf("paper-model link utilization: %.1f MB/s of %.0f "
                "MB/s available\n",
                paper_model.linkUtilizationMBps(),
                paper_model.link.bandwidthMBps);
    std::printf("=> the software channel, not the link, is the "
                "bottleneck (as in the paper)\n");

    banner("Cycle-accurate LI pipeline: modeled FPGA throughput");
    // What the 35 MHz streaming pipeline alone could sustain,
    // measured on the cycle-counted LI transceiver (the channel is
    // excluded here; with the software channel attached the Fig. 2
    // bottleneck applies).
    Table lt({"Modulation", "FPGA pipeline (Mb/s)", "x line rate"});
    for (int r = 0; r < phy::kNumRates; ++r) {
        phy::OfdmReceiver::Config rxc;
        rxc.decoder = "viterbi";
        sim::LiTransceiver t(r, rxc, "awgn",
                             li::Config::fromString(
                                 "snr_db=30,seed=1"));
        SplitMix64 rng(static_cast<std::uint64_t>(r));
        BitVec payload(1704);
        for (auto &b : payload)
            b = rng.nextBit();
        sim::LiPacketResult res = t.runPacket(payload, 0);
        double seconds =
            static_cast<double>(res.basebandCycles) / 35e6;
        double mbps = static_cast<double>(payload.size()) / seconds /
                      1e6;
        const phy::RateParams &rp = phy::rateTable(r);
        lt.addRow({rp.name(), strprintf("%.2f", mbps),
                   strprintf("%.2fx", mbps / rp.lineRateMbps)});
    }
    lt.print();
    std::printf(
        "low/mid rates clear their line rates outright; the top "
        "rates land at ~0.7x in this per-packet\nmeasurement because "
        "the modeled decoder collects the whole block before "
        "emitting (streaming\nhardware overlaps the two, recovering "
        "the gap). Either way the FPGA partition is far above\nthe "
        "~34%% co-simulation speeds of Figure 2: the software "
        "channel is the bottleneck, exactly the\npaper's finding.\n");
    report.writeIfRequested(json_path);
    return 0;
}
