/**
 * @file
 * Figure 5 reproduction: BER as a function of the LLR hints emitted
 * by the hardware BCJR (5a) and SOVA (5b) decoders, for the paper's
 * three configurations: QAM-16 @ 6 dB, QPSK @ 6 dB, QAM-16 @ 8 dB
 * over AWGN.
 *
 * The paper's claims to verify:
 *  - log10(BER) is linear in the LLR hint for both decoders,
 *  - the slope varies with SNR, modulation and decoder (the three
 *    scaling factors of eq. 5),
 *  - BCJR's usable hint range covers low BERs across a wider set of
 *    SNRs than SOVA's.
 *
 * The paper simulated 1e12 bits on the FPGA to resolve BER 1e-8;
 * this host build resolves down to ~1e-6 by default (raise
 * WILIS_BENCH_SCALE to push deeper).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/sweep.hh"
#include "softphy/llr_ber.hh"
#include "softphy/softphy.hh"

using namespace wilis;
using namespace wilis::bench;

namespace {

struct Curve {
    const char *label;
    phy::RateIndex rate;
    double snrDb;
};

// The paper's operating points, shifted onto this pipeline's
// waterfall. Our receiver is idealized (perfect synchronization and
// CSI, no implementation loss), so its decoded-BER waterfalls sit a
// few dB left of the paper's hardware pipeline; QPSK at the paper's
// 6 dB label is error-free here and is evaluated at the equivalent
// 3 dB point instead (see EXPERIMENTS.md). The figure's claims --
// log-linearity and slope dependence on SNR/modulation/decoder --
// are unaffected by the shift.

void
runDecoder(const char *decoder, const std::vector<Curve> &curves,
           std::uint64_t bits_per_curve)
{
    banner(strprintf("Figure 5 (%s): BER vs LLR hints", decoder));
    for (const auto &c : curves) {
        softphy::CalibrationSpec spec;
        spec.rx.decoder = decoder;
        spec.payloadBits = 1704;
        spec.packets = bits_per_curve / spec.payloadBits + 1;
        spec.threads = 0;

        softphy::LlrCalibrator cal =
            measureLlrCurve(c.rate, c.snrDb, spec);
        double scale = cal.fitScale();

        std::printf("\n--- %s, AWGN SNR %.0f dB (%llu bits, fitted "
                    "eq.5 scale %.4f) ---\n",
                    c.label, c.snrDb,
                    static_cast<unsigned long long>(
                        cal.totalObservations()),
                    scale);
        Table t({"LLR hint", "bits", "errors", "BER",
                 "model 1/(1+e^(s*L))"});
        for (const auto &pt : cal.curve()) {
            if (pt.total < 200)
                continue;
            t.addRow({strprintf("%6.1f", pt.llr),
                      strprintf("%llu",
                                static_cast<unsigned long long>(
                                    pt.total)),
                      strprintf("%llu",
                                static_cast<unsigned long long>(
                                    pt.errors)),
                      pt.errors ? strprintf("%.3e", pt.ber)
                                : std::string("< resolution"),
                      strprintf("%.3e",
                                softphy::berFromHint(pt.llr, scale))});
        }
        t.print();

        // Log-linearity check over well-populated bins.
        auto curve = cal.curve();
        double min_ber = 1.0;
        double max_llr_with_errors = 0.0;
        for (const auto &pt : curve) {
            if (pt.errors >= 5 && pt.ber < min_ber)
                min_ber = pt.ber;
            if (pt.errors >= 5)
                max_llr_with_errors =
                    std::max(max_llr_with_errors, pt.llr);
        }
        std::printf("lowest resolved BER: %.2e (hints up to %.0f)\n",
                    min_ber, max_llr_with_errors);
    }
}

} // namespace

int
main()
{
    const std::vector<Curve> curves = {
        {"QAM-16 (paper: 6 dB)", 4, 6.0},
        {"QPSK (paper: 6 dB, here 3 dB)", 2, 3.0},
        {"QAM-16 (paper: 8 dB)", 4, 8.0},
    };
    std::uint64_t bits = scaled(2000000, 200000);
    runDecoder("bcjr", curves, bits);
    runDecoder("sova", curves, bits);

    banner("Summary: eq. 5 slope depends on SNR, modulation, decoder");
    Table t({"Decoder", "Config", "fitted scale"});
    for (const char *dec : {"bcjr", "sova"}) {
        for (const auto &c : curves) {
            softphy::CalibrationSpec spec;
            spec.rx.decoder = dec;
            spec.payloadBits = 1704;
            spec.packets = bits / 4 / spec.payloadBits + 1;
            spec.threads = 0;
            auto cal = measureLlrCurve(c.rate, c.snrDb, spec);
            t.addRow({dec,
                      strprintf("%s %.0f dB", c.label, c.snrDb),
                      strprintf("%.4f", cal.fitScale())});
        }
    }
    t.print();
    return 0;
}
