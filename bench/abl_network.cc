/**
 * @file
 * Ablation: multi-user network simulator scaling. Sweeps the worker
 * thread count for a fixed cell (>= 32 users) and reports aggregate
 * simulated frames per second, then sweeps the user count at a fixed
 * thread count to show how cell size moves the bottleneck. Because
 * runs are bit-identical for any thread count, the speedup column is
 * a pure execution-architecture measurement -- the physics cannot
 * drift with the sharding.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/cpu_features.hh"
#include "common/kernels.hh"
#include "common/logging.hh"
#include "sim/network_sim.hh"

using namespace wilis;

namespace {

double
framesPerSec(const sim::NetworkSpec &spec, std::uint64_t slots,
             int threads, std::uint64_t *frames_out)
{
    sim::NetworkSim sim(spec);
    bench::Stopwatch timer;
    sim::NetworkResult res = sim.run(slots, threads);
    double secs = timer.seconds();
    if (frames_out)
        *frames_out = res.aggregate.framesSent;
    return secs > 0.0
               ? static_cast<double>(res.aggregate.framesSent) / secs
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathFromArgs(argc, argv);
    bench::JsonReport report("abl_network");
    report.meta("backend",
                kernels::backendName(kernels::activeBackend()));
    report.meta("cpu", cpu::featureString());
    report.meta("bench_scale", strprintf("%g", bench::benchScale()));

    const std::uint64_t slots = bench::scaled(60, 10);

    sim::NetworkSpec spec = sim::networkPreset("cell-16");
    spec.numUsers = 32;
    spec.link.payloadBits = 600;
    spec.snrSpreadDb = 8.0;

    bench::banner("network scaling: 32 users, threads sweep");
    std::printf("%-8s %-10s %-14s %-9s\n", "threads", "frames",
                "frames/sec", "speedup");
    double base = 0.0;
    for (int threads : {1, 2, 4, 8}) {
        std::uint64_t frames = 0;
        double fps = framesPerSec(spec, slots, threads, &frames);
        if (threads == 1)
            base = fps;
        report.metric(strprintf("fps_u32_t%d", threads), fps,
                      "frames/s");
        std::printf("%-8d %-10llu %-14.1f %-9.2f\n", threads,
                    static_cast<unsigned long long>(frames), fps,
                    base > 0.0 ? fps / base : 0.0);
    }

    bench::banner("network scaling: users sweep at 4 threads");
    std::printf("%-8s %-10s %-14s %-12s\n", "users", "frames",
                "frames/sec", "goodput Mb/s");
    for (int users : {8, 16, 32, 64}) {
        sim::NetworkSpec s = spec;
        s.numUsers = users;
        sim::NetworkSim sim(s);
        bench::Stopwatch timer;
        sim::NetworkResult res = sim.run(slots, 4);
        double secs = timer.seconds();
        double fps = secs > 0.0
                         ? static_cast<double>(
                               res.aggregate.framesSent) /
                               secs
                         : 0.0;
        report.metric(strprintf("fps_t4_u%d", users), fps,
                      "frames/s");
        std::printf("%-8d %-10llu %-14.1f %-12.3f\n", users,
                    static_cast<unsigned long long>(
                        res.aggregate.framesSent),
                    fps, res.aggregateGoodputMbps());
    }
    report.writeIfRequested(json_path);
    return 0;
}
