/**
 * @file
 * Ablation: multi-user network simulator scaling. Sweeps the worker
 * thread count for a fixed cell (>= 32 users) and reports aggregate
 * simulated frames per second, then sweeps the user count at a fixed
 * thread count to show how cell size moves the bottleneck. Because
 * runs are bit-identical for any thread count, the speedup column is
 * a pure execution-architecture measurement -- the physics cannot
 * drift with the sharding.
 *
 * The fidelity A/B section runs the same cell through the three
 * fidelity modes (full / analytic / auto) at an equal user count and
 * reports simulated user-slots per wall-clock second for each plus
 * the speedup over full -- the headline of the hybrid-fidelity PR:
 * the analytic path must clear >= 10x, auto >= 5x, and the bench
 * exits nonzero below those floors (CI's bench-trajectory job runs
 * it, so the contract is enforced, not just printed). A
 * cell-1k-sized analytic run closes the section (thousands of
 * users, the scale full PHY cannot reach).
 */

#include <cstdio>
#include <memory>

#include "bench/bench_util.hh"
#include "common/cpu_features.hh"
#include "common/kernels.hh"
#include "common/logging.hh"
#include "sim/link_fidelity.hh"
#include "sim/network_sim.hh"

using namespace wilis;

namespace {

double
framesPerSec(const sim::NetworkSpec &spec, std::uint64_t slots,
             int threads, std::uint64_t *frames_out)
{
    sim::NetworkSim sim(spec);
    bench::Stopwatch timer;
    sim::NetworkResult res = sim.run(slots, threads);
    double secs = timer.seconds();
    if (frames_out)
        *frames_out = res.aggregate.framesSent;
    return secs > 0.0
               ? static_cast<double>(res.aggregate.framesSent) / secs
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathFromArgs(argc, argv);
    bench::JsonReport report("abl_network");
    report.meta("backend",
                kernels::backendName(kernels::activeBackend()));
    report.meta("cpu", cpu::featureString());
    report.meta("bench_scale", strprintf("%g", bench::benchScale()));

    const std::uint64_t slots = bench::scaled(60, 10);

    sim::NetworkSpec spec = sim::networkPreset("cell-16");
    spec.numUsers = 32;
    spec.link.payloadBits = 600;
    spec.snrSpreadDb = 8.0;

    bench::banner("network scaling: 32 users, threads sweep");
    std::printf("%-8s %-10s %-14s %-9s\n", "threads", "frames",
                "frames/sec", "speedup");
    double base = 0.0;
    for (int threads : {1, 2, 4, 8}) {
        std::uint64_t frames = 0;
        double fps = framesPerSec(spec, slots, threads, &frames);
        if (threads == 1)
            base = fps;
        report.metric(strprintf("fps_u32_t%d", threads), fps,
                      "frames/s");
        std::printf("%-8d %-10llu %-14.1f %-9.2f\n", threads,
                    static_cast<unsigned long long>(frames), fps,
                    base > 0.0 ? fps / base : 0.0);
    }

    bench::banner("network scaling: users sweep at 4 threads");
    std::printf("%-8s %-10s %-14s %-12s\n", "users", "frames",
                "frames/sec", "goodput Mb/s");
    for (int users : {8, 16, 32, 64}) {
        sim::NetworkSpec s = spec;
        s.numUsers = users;
        sim::NetworkSim sim(s);
        bench::Stopwatch timer;
        sim::NetworkResult res = sim.run(slots, 4);
        double secs = timer.seconds();
        double fps = secs > 0.0
                         ? static_cast<double>(
                               res.aggregate.framesSent) /
                               secs
                         : 0.0;
        report.metric(strprintf("fps_t4_u%d", users), fps,
                      "frames/s");
        std::printf("%-8d %-10llu %-14.1f %-12.3f\n", users,
                    static_cast<unsigned long long>(
                        res.aggregate.framesSent),
                    fps, res.aggregateGoodputMbps());
    }

    // ---- fidelity A/B: equal cell, full vs analytic vs auto ------
    bench::banner(
        "fidelity A/B: 16 users, equal slots, full vs analytic "
        "vs auto");
    sim::NetworkSpec fspec = sim::networkPreset("cell-16");
    fspec.link.payloadBits = 600;
    fspec.snrSpreadDb = 8.0;
    fspec.fidelity.warmupSlots = 8;
    fspec.fidelity.refreshPeriod = 64;
    fspec.fidelity.refreshSlots = 2;
    const std::uint64_t fslots = bench::scaled(480, 240);

    // The offline calibration is shared across the modes (and
    // excluded from the timed region: it is a build artifact, paid
    // once per PHY configuration, not per run).
    auto table =
        std::make_shared<const softphy::CalibrationTable>(
            softphy::CalibrationTable::build(
                sim::NetworkSim::calibrationBuildSpec(fspec)));

    std::printf("%-10s %-12s %-16s %-9s %-10s\n", "mode",
                "user-slots", "user-slots/sec", "speedup",
                "full-PHY%");
    double uslots_full = 0.0;
    double speedup_analytic = 0.0;
    double speedup_auto = 0.0;
    for (sim::FidelityMode mode :
         {sim::FidelityMode::Full, sim::FidelityMode::Analytic,
          sim::FidelityMode::Auto}) {
        sim::NetworkSpec s = fspec;
        s.fidelity.mode = mode;
        sim::NetworkSim sim(s, table);
        // The analytic path finishes a cell in well under a
        // millisecond -- far inside timer noise -- so every mode
        // repeats its (deterministic, repeatable) run until the
        // measurement window is long enough to gate regressions on.
        std::uint64_t frames_acc = 0;
        std::uint64_t full_acc = 0;
        double secs = 0.0;
        bench::Stopwatch timer;
        do {
            sim::NetworkResult res = sim.run(fslots, 4);
            frames_acc += res.aggregate.framesSent;
            full_acc += res.aggregate.fullPhyFrames;
            secs = timer.seconds();
        } while (secs < 0.25);
        double uslots =
            secs > 0.0
                ? static_cast<double>(frames_acc) / secs
                : 0.0;
        double full_share =
            frames_acc ? 100.0 * static_cast<double>(full_acc) /
                             static_cast<double>(frames_acc)
                       : 0.0;
        const char *name = sim::fidelityModeName(mode);
        if (mode == sim::FidelityMode::Full)
            uslots_full = uslots;
        else if (mode == sim::FidelityMode::Analytic)
            speedup_analytic =
                uslots_full > 0.0 ? uslots / uslots_full : 0.0;
        else
            speedup_auto =
                uslots_full > 0.0 ? uslots / uslots_full : 0.0;
        report.metric(strprintf("uslots_%s", name), uslots,
                      "user-slots/s");
        std::printf("%-10s %-12llu %-16.0f %-9.2f %-10.1f\n", name,
                    static_cast<unsigned long long>(frames_acc),
                    uslots,
                    uslots_full > 0.0 ? uslots / uslots_full : 0.0,
                    full_share);
    }
    report.metric("fidelity_speedup_analytic", speedup_analytic,
                  "x");
    report.metric("fidelity_speedup_auto", speedup_auto, "x");

    // ---- the scale step: a cell-1k-sized analytic run ------------
    bench::banner("analytic at scale: 1024 users");
    {
        sim::NetworkSpec s = fspec;
        s.numUsers = 1024;
        s.fidelity.mode = sim::FidelityMode::Analytic;
        const std::uint64_t slots_1k = bench::scaled(240, 60);
        sim::NetworkSim sim(s, table);
        std::uint64_t frames_acc = 0;
        double secs = 0.0;
        double goodput = 0.0;
        bench::Stopwatch timer;
        do {
            sim::NetworkResult res = sim.run(slots_1k, 4);
            frames_acc += res.aggregate.framesSent;
            goodput = res.aggregateGoodputMbps();
            secs = timer.seconds();
        } while (secs < 0.25);
        double uslots =
            secs > 0.0
                ? static_cast<double>(frames_acc) / secs
                : 0.0;
        report.metric("uslots_1k_analytic", uslots, "user-slots/s");
        std::printf("%-8d users  %-10llu user-slots  %-14.0f "
                    "user-slots/sec  %.3f Mb/s cell goodput\n",
                    s.numUsers,
                    static_cast<unsigned long long>(frames_acc),
                    uslots, goodput);
    }

    report.writeIfRequested(json_path);

    // The hybrid-fidelity contract (measured ~800x / ~13x; the
    // floors leave room for slow CI hardware, not for a broken fast
    // path).
    int failures = 0;
    if (speedup_analytic < 10.0) {
        std::fprintf(stderr,
                     "FAIL: analytic fidelity speedup %.2fx below "
                     "the 10x floor\n",
                     speedup_analytic);
        ++failures;
    }
    if (speedup_auto < 5.0) {
        std::fprintf(stderr,
                     "FAIL: auto fidelity speedup %.2fx below the "
                     "5x floor\n",
                     speedup_auto);
        ++failures;
    }
    return failures ? 1 : 0;
}
