/**
 * @file
 * google-benchmark microbenchmarks of the compute kernels: FFT,
 * mapper/demapper, interleaver, scrambler, AWGN noise generation,
 * and the three decoders. These quantify why the paper concludes a
 * pure-software simulator cannot reach line rate (section 5: "a
 * well-tuned software radio will be able to achieve a few tens to
 * hundreds of Kbps" for BCJR-class algorithms; our optimized kernels
 * reach a few Mb/s per core -- still 10-50x short of the 54 Mb/s
 * line rate WiLIS sustains on the FPGA).
 */

#include <benchmark/benchmark.h>

#include "channel/awgn.hh"
#include "common/kernels.hh"
#include "common/random.hh"
#include "decode/soft_decoder.hh"
#include "decode/trellis_kernels.hh"
#include "phy/conv_code.hh"
#include "phy/demapper.hh"
#include "phy/fft.hh"
#include "phy/interleaver.hh"
#include "phy/mapper.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"
#include "phy/scrambler.hh"

using namespace wilis;
using namespace wilis::phy;

namespace {

BitVec
randomBits(size_t n, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    BitVec v(n);
    for (auto &b : v)
        b = rng.nextBit();
    return v;
}

void
BM_Fft64(benchmark::State &state)
{
    Fft fft(64);
    SplitMix64 rng(1);
    SampleVec x(64);
    for (auto &v : x)
        v = Sample(rng.nextDouble(), rng.nextDouble());
    for (auto _ : state) {
        fft.forward(x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Fft64);

void
BM_Scrambler(benchmark::State &state)
{
    Scrambler s(0x5D);
    BitVec data = randomBits(4096, 2);
    for (auto _ : state) {
        BitVec out = s.process(data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Scrambler);

void
BM_ConvEncode(benchmark::State &state)
{
    BitVec data = randomBits(4096, 3);
    for (auto _ : state) {
        BitVec out = convCode().encode(data, true);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ConvEncode);

void
BM_Interleave(benchmark::State &state)
{
    Interleaver il(Modulation::QAM16);
    BitVec data = randomBits(static_cast<size_t>(il.blockSize()) * 16,
                             4);
    for (auto _ : state) {
        BitVec out = il.interleaveStream(data);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Interleave);

void
BM_MapDemap(benchmark::State &state)
{
    auto mod = static_cast<Modulation>(state.range(0));
    Mapper m(mod);
    Demapper dm(mod);
    BitVec bits = randomBits(
        static_cast<size_t>(bitsPerSubcarrier(mod)) * 1024, 5);
    for (auto _ : state) {
        SampleVec symbols = m.mapStream(bits);
        SoftVec soft = dm.demapStream(symbols);
        benchmark::DoNotOptimize(soft.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_MapDemap)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_AwgnNoise(benchmark::State &state)
{
    channel::AwgnChannel ch(10.0, 1, static_cast<int>(state.range(0)));
    SampleVec buf(1 << 14, Sample(1.0, 0.0));
    std::uint64_t p = 0;
    for (auto _ : state) {
        ch.apply(buf, p++);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_AwgnNoise)->Arg(1)->Arg(2);

void
BM_Decoder(benchmark::State &state, const char *name)
{
    auto dec = decode::makeDecoder(name);
    BitVec data = randomBits(2048, 7);
    BitVec coded = convCode().encode(data, true);
    GaussianSource g(11);
    SoftVec soft(coded.size());
    for (size_t i = 0; i < coded.size(); ++i)
        soft[i] = static_cast<SoftBit>(
            std::lround((coded[i] ? 12.0 : -12.0) + 8.0 * g.next()));
    for (auto _ : state) {
        auto out = dec->decodeBlock(soft);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(data.size()));
}
BENCHMARK_CAPTURE(BM_Decoder, viterbi, "viterbi");
BENCHMARK_CAPTURE(BM_Decoder, sova, "sova");
BENCHMARK_CAPTURE(BM_Decoder, bcjr, "bcjr");
BENCHMARK_CAPTURE(BM_Decoder, bcjr_logmap, "bcjr-logmap");

void
BM_FullPipeline(benchmark::State &state)
{
    OfdmTransmitter tx(4);
    OfdmReceiver::Config rxc;
    rxc.decoder = "bcjr";
    OfdmReceiver rx(4, rxc);
    channel::AwgnChannel ch(9.0, 1);
    BitVec payload = randomBits(1704, 8);
    std::uint64_t p = 0;
    for (auto _ : state) {
        SampleVec s = tx.modulate(payload);
        ch.apply(s, p++);
        RxResult res = rx.demodulate(s, payload.size());
        benchmark::DoNotOptimize(res.payload.data());
    }
    state.SetItemsProcessed(state.iterations() * 1704);
}
BENCHMARK(BM_FullPipeline);

// ---- SIMD kernel layer: per-backend microbenches. Arg(0) indexes
// kernels::availableBackends(), so unsupported backends simply don't
// register on a given host.

bool
selectBackendArg(benchmark::State &state)
{
    auto avail = kernels::availableBackends();
    auto idx = static_cast<size_t>(state.range(0));
    if (idx >= avail.size()) {
        state.SkipWithError("backend unavailable");
        return false;
    }
    kernels::setBackend(avail[idx]);
    state.SetLabel(kernels::backendName(avail[idx]));
    return true;
}

void
BM_KernelAcsForward(benchmark::State &state)
{
    if (!selectBackendArg(state))
        return;
    const auto &tv = decode::TrellisTables::view();
    SplitMix64 rng(21);
    std::int32_t pm[decode::kStates];
    std::int32_t pm_next[decode::kStates];
    for (auto &x : pm)
        x = static_cast<std::int32_t>(rng.nextBelow(1 << 20));
    std::int32_t bm[4] = {-24, 3, -3, 24};
    std::uint64_t choices = 0;
    for (auto _ : state) {
        kernels::ops().acsForward(tv, pm, bm, pm_next, &choices,
                                  nullptr);
        benchmark::DoNotOptimize(pm_next);
        benchmark::DoNotOptimize(choices);
    }
    state.SetItemsProcessed(state.iterations() * decode::kStates);
}
BENCHMARK(BM_KernelAcsForward)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelAcsForwardI16(benchmark::State &state)
{
    if (!selectBackendArg(state))
        return;
    const auto &tv = decode::TrellisTables::view();
    SplitMix64 rng(22);
    std::int16_t pm[decode::kStates];
    std::int16_t pm_next[decode::kStates];
    for (auto &x : pm)
        x = static_cast<std::int16_t>(rng.next());
    std::int16_t bm[4] = {-24, 3, -3, 24};
    std::uint64_t choices = 0;
    for (auto _ : state) {
        kernels::ops().acsForwardI16(tv, pm, bm, pm_next, &choices);
        benchmark::DoNotOptimize(pm_next);
        benchmark::DoNotOptimize(choices);
    }
    state.SetItemsProcessed(state.iterations() * decode::kStates);
}
BENCHMARK(BM_KernelAcsForwardI16)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelDemapBatch(benchmark::State &state)
{
    if (!selectBackendArg(state))
        return;
    Demapper dm(Modulation::QAM64);
    SplitMix64 rng(23);
    const size_t n = 48; // one OFDM symbol of data carriers
    SampleVec ys(n);
    for (auto &y : ys)
        y = Sample(rng.nextDouble() * 2.0 - 1.0,
                   rng.nextDouble() * 2.0 - 1.0);
    SoftVec out(n * 6);
    for (auto _ : state) {
        dm.demapBatch(ys.data(), nullptr, n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n * 6));
}
BENCHMARK(BM_KernelDemapBatch)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelScaleComplex(benchmark::State &state)
{
    if (!selectBackendArg(state))
        return;
    SplitMix64 rng(24);
    SampleVec buf(1 << 12);
    for (auto &s : buf)
        s = Sample(rng.nextDouble(), rng.nextDouble());
    const Sample h(0.83, -0.42);
    for (auto _ : state) {
        kernels::ops().scaleComplex(buf.data(), buf.size(), h);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_KernelScaleComplex)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelAxpyF32(benchmark::State &state)
{
    if (!selectBackendArg(state))
        return;
    SplitMix64 rng(25);
    std::vector<float> x(1 << 14), y(1 << 14);
    for (size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(rng.nextDouble());
        y[i] = static_cast<float>(rng.nextDouble());
    }
    for (auto _ : state) {
        kernels::ops().axpyF32(y.data(), x.data(), y.size(), 0.5f);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(y.size()));
}
BENCHMARK(BM_KernelAxpyF32)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
