/**
 * @file
 * Link-layer goodput ablation: what the SoftPHY hints buy at the MAC
 * layer. Compares, over the same 20 Hz Rayleigh / 10 dB AWGN channel:
 *  - fixed-rate ARQ at every 802.11a/g rate (the conventional
 *    baseline: any bit error retransmits the whole packet),
 *  - SoftRate (PBER-driven rate adaptation + ARQ),
 *  - PPR at a fixed rate (retransmit only the flagged chunks).
 *
 * The paper's conclusion cites SoftRate's "2x to 4x" gain "depending
 * on the base of comparison": the base is a badly chosen fixed rate
 * -- adaptation wins big against a too-high fixed rate (constant
 * losses in fades) and against a too-low one (wasted airtime).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "mac/ppr.hh"
#include "mac/softrate.hh"
#include "sim/testbench.hh"
#include "softphy/softphy.hh"

using namespace wilis;
using namespace wilis::bench;

namespace {

constexpr size_t kPayloadBits = 1704;
constexpr double kOverheadUs = 100.0; // preamble + SIFS + ACK
constexpr int kMaxTries = 8;

double
airtimeUs(phy::RateIndex rate)
{
    phy::OfdmTransmitter tx(rate);
    return static_cast<double>(tx.numSamples(kPayloadBits)) / 20.0 +
           kOverheadUs;
}

struct GoodputResult {
    double goodputMbps = 0.0;
    double perPct = 0.0;
    double avgTries = 0.0;
};

/** Fixed-rate ARQ baseline. */
GoodputResult
runFixed(phy::RateIndex rate, std::uint64_t packets,
         const li::Config &chan_cfg)
{
    sim::TestbenchConfig cfg;
    cfg.rate = rate;
    cfg.rx.decoder = "viterbi";
    cfg.channel = "rayleigh";
    cfg.channelCfg = chan_cfg;
    sim::Testbench tb(cfg);

    double airtime_us = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t tries_total = 0;
    std::uint64_t failures = 0;
    std::uint64_t slot = 0;
    for (std::uint64_t p = 0; p < packets; ++p) {
        bool ok = false;
        int tries = 0;
        while (tries < kMaxTries && !ok) {
            ++tries;
            ok = tb.runPacket(kPayloadBits, slot++).ok;
            airtime_us += airtimeUs(rate);
        }
        tries_total += static_cast<std::uint64_t>(tries);
        if (ok)
            delivered += kPayloadBits;
        else
            ++failures;
    }
    GoodputResult r;
    r.goodputMbps = static_cast<double>(delivered) / airtime_us;
    r.perPct = 100.0 * static_cast<double>(failures) /
               static_cast<double>(packets);
    r.avgTries = static_cast<double>(tries_total) /
                 static_cast<double>(packets);
    return r;
}

/** SoftRate: per-rate PBER estimates drive the rate between tries. */
GoodputResult
runSoftRate(std::uint64_t packets, const li::Config &chan_cfg,
            const softphy::BerEstimator &est)
{
    std::array<std::unique_ptr<sim::Testbench>, phy::kNumRates>
        benches;
    for (int r = 0; r < phy::kNumRates; ++r) {
        sim::TestbenchConfig cfg;
        cfg.rate = r;
        cfg.rx.decoder = "bcjr";
        cfg.channel = "rayleigh";
        cfg.channelCfg = chan_cfg;
        benches[static_cast<size_t>(r)] =
            std::make_unique<sim::Testbench>(cfg);
    }

    mac::SoftRateMac::Config mc;
    mc.pberLo = 1e-6;
    mc.pberHi = 1e-4;
    mac::SoftRateMac softrate(mc);

    double airtime_us = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t tries_total = 0;
    std::uint64_t failures = 0;
    std::uint64_t slot = 0;
    for (std::uint64_t p = 0; p < packets; ++p) {
        bool ok = false;
        int tries = 0;
        while (tries < kMaxTries && !ok) {
            ++tries;
            phy::RateIndex rate = softrate.currentRate();
            auto res = benches[static_cast<size_t>(rate)]->runPacket(
                kPayloadBits, slot++);
            airtime_us += airtimeUs(rate);
            softrate.onFeedback(
                est.packetBerForRate(rate, res.rx.soft));
            ok = res.ok;
        }
        tries_total += static_cast<std::uint64_t>(tries);
        if (ok)
            delivered += kPayloadBits;
        else
            ++failures;
    }
    GoodputResult r;
    r.goodputMbps = static_cast<double>(delivered) / airtime_us;
    r.perPct = 100.0 * static_cast<double>(failures) /
               static_cast<double>(packets);
    r.avgTries = static_cast<double>(tries_total) /
                 static_cast<double>(packets);
    return r;
}

/** PPR at a fixed rate: partial retransmissions of flagged chunks. */
GoodputResult
runPpr(phy::RateIndex rate, std::uint64_t packets,
       const li::Config &chan_cfg, const softphy::BerEstimator &est)
{
    sim::TestbenchConfig cfg;
    cfg.rate = rate;
    cfg.rx.decoder = "bcjr";
    cfg.channel = "rayleigh";
    cfg.channelCfg = chan_cfg;
    sim::Testbench tb(cfg);
    mac::PprPolicy ppr(&est, 1e-3, 64);
    phy::Modulation mod = phy::rateTable(rate).modulation;

    double airtime_us = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t tries_total = 0;
    std::uint64_t failures = 0;
    std::uint64_t slot = 0;
    const double full_us = airtimeUs(rate);
    for (std::uint64_t p = 0; p < packets; ++p) {
        auto res = tb.runPacket(kPayloadBits, slot++);
        airtime_us += full_us;
        int tries = 1;
        bool ok = res.ok;
        if (!ok) {
            mac::PprOutcome out =
                ppr.evaluate(mod, res.rx.soft, res.txPayload);
            if (out.recoverable()) {
                // One partial retransmission of the flagged chunks
                // (modeled as delivered reliably at low rate cost).
                airtime_us +=
                    kOverheadUs +
                    out.retransmitFraction() * (full_us - kOverheadUs);
                ++tries;
                ok = true;
            } else {
                // Fall back to full ARQ.
                while (tries < kMaxTries && !ok) {
                    ++tries;
                    ok = tb.runPacket(kPayloadBits, slot++).ok;
                    airtime_us += full_us;
                }
            }
        }
        tries_total += static_cast<std::uint64_t>(tries);
        if (ok)
            delivered += kPayloadBits;
        else
            ++failures;
    }
    GoodputResult r;
    r.goodputMbps = static_cast<double>(delivered) / airtime_us;
    r.perPct = 100.0 * static_cast<double>(failures) /
               static_cast<double>(packets);
    r.avgTries = static_cast<double>(tries_total) /
                 static_cast<double>(packets);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = jsonPathFromArgs(argc, argv);
    JsonReport report("abl_goodput");
    report.meta("bench_scale", strprintf("%g", benchScale()));

    banner("Link-layer goodput: fixed-rate ARQ vs SoftRate vs PPR "
           "(20 Hz fading, 10 dB AWGN)");

    li::Config chan_cfg = li::Config::fromString(
        "snr_db=10,doppler_hz=20,seed=4242,packet_interval_us=200,"
        "block_fading=true");
    std::uint64_t packets = scaled(200, 40);

    softphy::CalibrationSpec spec;
    spec.rx.decoder = "bcjr";
    spec.packets = scaled(200, 50);
    spec.threads = 0;
    softphy::BerEstimator est = calibrateRateEstimator(spec);
    // PPR needs per-modulation dispatch too.
    for (phy::Modulation m :
         {phy::Modulation::BPSK, phy::Modulation::QPSK,
          phy::Modulation::QAM16, phy::Modulation::QAM64})
        est.setTable(m, calibrateTable(m, spec));

    Table t({"policy", "goodput (Mb/s)", "PER %", "avg tries"});
    double best_fixed = 0.0;
    double robust_fixed = 0.0; // BPSK 1/2: the safe static choice
    double lossy_fixed = 0.0;  // QAM-16 3/4: too aggressive here
    for (int r = 0; r < phy::kNumRates; r += 1) {
        GoodputResult g = runFixed(r, packets, chan_cfg);
        best_fixed = std::max(best_fixed, g.goodputMbps);
        if (r == 0)
            robust_fixed = g.goodputMbps;
        if (r == 5)
            lossy_fixed = g.goodputMbps;
        t.addRow({"fixed " + phy::rateTable(r).name(),
                  strprintf("%.2f", g.goodputMbps),
                  strprintf("%.1f", g.perPct),
                  strprintf("%.2f", g.avgTries)});
    }
    GoodputResult sr = runSoftRate(packets, chan_cfg, est);
    report.metric("softrate_goodput_mbps", sr.goodputMbps, "Mb/s");
    report.metric("best_fixed_goodput_mbps", best_fixed, "Mb/s");
    t.addRow({"SoftRate (adaptive)",
              strprintf("%.2f", sr.goodputMbps),
              strprintf("%.1f", sr.perPct),
              strprintf("%.2f", sr.avgTries)});
    // PPR helps where whole-packet ARQ pays for sparse errors: run
    // it at the lossy fixed rate.
    GoodputResult pp = runPpr(5, packets, chan_cfg, est);
    t.addRow({"PPR @ QAM16 3/4", strprintf("%.2f", pp.goodputMbps),
              strprintf("%.1f", pp.perPct),
              strprintf("%.2f", pp.avgTries)});
    t.print();

    std::printf("\nSoftRate vs best fixed rate:         %.2fx\n",
                sr.goodputMbps / best_fixed);
    std::printf("SoftRate vs robust fixed (BPSK 1/2): %.2fx\n",
                sr.goodputMbps / robust_fixed);
    std::printf("SoftRate vs lossy fixed (QAM16 3/4): %.2fx\n",
                sr.goodputMbps / lossy_fixed);
    std::printf("PPR vs whole-packet ARQ at QAM16 3/4: %.2fx\n",
                pp.goodputMbps / lossy_fixed);
    std::printf("(the paper cites SoftRate's \"2x to 4x\" gain "
                "\"depending on the base of comparison\" -- the base "
                "is a\nbadly chosen fixed rate)\n");
    report.writeIfRequested(json_path);
    return 0;
}
