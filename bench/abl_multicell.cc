/**
 * @file
 * Ablation: multi-cell interference-aware network simulation.
 *
 * Sections:
 *  - grid-3x3 threads sweep -- lockstep two-phase slots sharded one
 *    cell per work item; the speedup column is pure execution
 *    architecture because runs are bit-identical at any thread
 *    count.
 *  - dense-urban-10k analytic throughput -- the headline: a 100-cell,
 *    10k+-user deployment on the calibrated analytic rung. The
 *    bench fails below 1M user-slots/sec (user-slots = users x
 *    simulated slots, the timeline coverage per wall-clock second).
 *  - urban-mobile mobility -- the waypoint-mobility preset with A3
 *    handover and session churn: throughput of the mobile
 *    deployment plus the deterministic handover / ping-pong
 *    counters (exact at a fixed WILIS_BENCH_SCALE, so any drift is
 *    a behavior change rather than noise).
 *  - scheduler A/B -- round_robin vs proportional_fair on the same
 *    deployment: cell goodput plus Jain's fairness index over
 *    per-user goodput.
 *  - fidelity A/B -- the same small grid through the full-PHY rung
 *    (bit-exact frames at conditioned SINR) and the analytic rung;
 *    the analytic path must clear 10x.
 *
 * Run from the repo root (the presets reference the committed
 * data/network_calibration.txt).
 */

#include <cstdio>
#include <memory>

#include "bench/bench_util.hh"
#include "common/cpu_features.hh"
#include "common/kernels.hh"
#include "common/logging.hh"
#include "sim/network_sim.hh"

using namespace wilis;

namespace {

/**
 * User-slots (users x slots) per wall-clock second, repeating the
 * deterministic run until the window is long enough to gate
 * regressions on.
 */
double
userSlotsPerSec(sim::NetworkSim &sim, std::uint64_t slots,
                int threads)
{
    const double user_slots =
        static_cast<double>(sim.spec().numUsers) *
        static_cast<double>(slots);
    std::uint64_t reps = 0;
    double secs = 0.0;
    bench::Stopwatch timer;
    do {
        sim.run(slots, threads);
        ++reps;
        secs = timer.seconds();
    } while (secs < 0.25);
    return user_slots * static_cast<double>(reps) / secs;
}

/** Jain's fairness index over per-user delivered bits. */
double
jainIndex(const sim::NetworkResult &res)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const sim::UserStats &u : res.users) {
        const double x = static_cast<double>(u.goodputBits);
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0.0)
        return 0.0;
    const double n = static_cast<double>(res.users.size());
    return sum * sum / (n * sum_sq);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathFromArgs(argc, argv);
    bench::JsonReport report("abl_multicell");
    report.meta("backend",
                kernels::backendName(kernels::activeBackend()));
    report.meta("cpu", cpu::featureString());
    report.meta("bench_scale", strprintf("%g", bench::benchScale()));

    int failures = 0;

    // ---- grid-3x3: threads sweep ---------------------------------
    bench::banner("grid-3x3 analytic: threads sweep");
    {
        const std::uint64_t slots = bench::scaled(400, 100);
        sim::NetworkSim sim(sim::networkPreset("grid-3x3"));
        std::printf("%-8s %-16s %-9s %-11s\n", "threads",
                    "user-slots/sec", "speedup", "efficiency");
        double base = 0.0;
        for (int threads : {1, 2, 4}) {
            const double uslots =
                userSlotsPerSec(sim, slots, threads);
            if (threads == 1)
                base = uslots;
            const double speedup =
                base > 0.0 ? uslots / base : 0.0;
            // Parallel efficiency: fraction of perfect scaling the
            // lockstep team actually delivers at this width.
            const double efficiency =
                speedup / static_cast<double>(threads);
            report.metric(strprintf("uslots_grid3x3_t%d", threads),
                          uslots, "user-slots/s");
            report.metric(strprintf("pareff_grid3x3_t%d", threads),
                          efficiency, "fraction");
            std::printf("%-8d %-16.0f %-9.2f %-11.2f\n", threads,
                        uslots, speedup, efficiency);
        }
    }

    // ---- dense-urban-10k: the deployment-scale headline ----------
    bench::banner("dense-urban-10k analytic: 100 cells, 10k+ users");
    {
        const std::uint64_t slots = bench::scaled(200, 50);
        // A/B the two bit-identical engines on the same deployment.
        // The per-user walk keeps the historical metric comparable;
        // the SoA engine (the default) is the headline. Both reuse
        // one NetworkSim across reps, so the SoA number includes
        // its cross-run cache -- that is the configuration the
        // sweep layer actually runs.
        double uslots_peruser = 0.0;
        double uslots_soa = 0.0;
        for (const char *engine : {"peruser", "soa"}) {
            sim::NetworkSpec spec =
                sim::networkPreset("dense-urban-10k");
            spec.engine = engine;
            sim::NetworkSim sim(spec);
            const double uslots = userSlotsPerSec(sim, slots, 4);
            sim::NetworkResult res = sim.run(slots, 4);
            if (std::string(engine) == "peruser") {
                uslots_peruser = uslots;
                report.metric("uslots_dense10k_analytic", uslots,
                              "user-slots/s");
            } else {
                uslots_soa = uslots;
                report.metric("uslots_dense10k_soa", uslots,
                              "user-slots/s");
            }
            std::printf("%-8s %-7d users  %-5d cells  %-14.0f "
                        "user-slots/sec  %.1f Mb/s goodput  "
                        "%.1f dB mean SINR\n",
                        engine, spec.numUsers, res.cells, uslots,
                        res.aggregateGoodputMbps(),
                        res.aggregate.sinrDb.mean());
        }
        std::printf("soa speedup over peruser: %.2fx\n",
                    uslots_peruser > 0.0
                        ? uslots_soa / uslots_peruser
                        : 0.0);
        // The deployment-scale contract: analytic fidelity must
        // keep a 10k-user grid above 1M simulated user-slots per
        // second (measured ~3M single-core; the floor leaves room
        // for slow CI hardware, not for a broken fast path).
        if (uslots_peruser < 1e6) {
            std::fprintf(stderr,
                         "FAIL: dense-urban-10k analytic "
                         "throughput %.0f user-slots/s below the "
                         "1M floor\n",
                         uslots_peruser);
            ++failures;
        }
        // The SoA engine owes a further 3x on top of that floor
        // (measured >=11M on the baseline box; the real >=3x-over-
        // baseline gate runs in CI via BENCH_multicell.json).
        if (uslots_soa < 3e6) {
            std::fprintf(stderr,
                         "FAIL: dense-urban-10k SoA throughput "
                         "%.0f user-slots/s below the 3M floor\n",
                         uslots_soa);
            ++failures;
        }
    }

    // ---- dense-urban-10k latency: trace-derived percentiles ------
    bench::banner("dense-urban-10k latency (traced run)");
    {
        // One traced run of the same deployment: the packet event
        // trace yields head-of-line queue wait (arrival -> first
        // grant) and end-to-end latency (arrival -> in-order
        // delivery) distributions; the percentiles gate regressions
        // as lower-is-better metrics.
        const std::uint64_t slots = bench::scaled(200, 50);
        sim::NetworkSpec spec = sim::networkPreset("dense-urban-10k");
        spec.trace = true;
        sim::NetworkResult res = sim::NetworkSim(spec).run(slots, 4);
        const Histogram &qw = res.aggregate.queueWaitHist;
        const Histogram &e2e = res.aggregate.e2eLatencyHist;
        const double qw_p50 = qw.quantile(0.5);
        const double qw_p99 = qw.quantile(0.99);
        const double e2e_p50 = e2e.quantile(0.5);
        const double e2e_p99 = e2e.quantile(0.99);
        report.metric("p50_queue_wait_dense10k", qw_p50, "slots",
                      false);
        report.metric("p99_queue_wait_dense10k", qw_p99, "slots",
                      false);
        report.metric("p50_e2e_latency_dense10k", e2e_p50, "slots",
                      false);
        report.metric("p99_e2e_latency_dense10k", e2e_p99, "slots",
                      false);
        std::printf("%-20s %-9s %-9s\n", "", "p50", "p99");
        std::printf("%-20s %-9.1f %-9.1f\n", "queue wait (slots)",
                    qw_p50, qw_p99);
        std::printf("%-20s %-9.1f %-9.1f\n", "e2e latency (slots)",
                    e2e_p50, e2e_p99);
        if (e2e.total() == 0) {
            std::fprintf(stderr, "FAIL: traced run delivered no "
                                 "packets\n");
            ++failures;
        }
    }

    // ---- urban-mobile: mobility, handover and churn --------------
    bench::banner("urban-mobile mobility: handover + churn");
    {
        const std::uint64_t slots = bench::scaled(2000, 500);
        sim::NetworkSim sim(sim::networkPreset("urban-mobile"));
        const double uslots = userSlotsPerSec(sim, slots, 4);
        const sim::NetworkResult res = sim.run(slots, 4);
        const sim::UserStats &agg = res.aggregate;
        report.metric("uslots_urban_mobile", uslots,
                      "user-slots/s");
        // Session-dynamics counters are pure functions of
        // (seed, user, slot): at a fixed WILIS_BENCH_SCALE they are
        // exact across machines and thread counts, so the
        // regression gate holds them to their baseline values.
        report.metric("handovers_urban_mobile",
                      static_cast<double>(agg.handovers), "count");
        report.metric("pingpongs_urban_mobile",
                      static_cast<double>(agg.pingPongs), "count",
                      false);
        std::printf("%-7d users  %-14.0f user-slots/sec  "
                    "%llu handovers (%llu ping-pong)  "
                    "%llu joins  %llu leaves\n",
                    res.spec.numUsers, uslots,
                    static_cast<unsigned long long>(agg.handovers),
                    static_cast<unsigned long long>(agg.pingPongs),
                    static_cast<unsigned long long>(agg.joins),
                    static_cast<unsigned long long>(agg.leaves));
        // A mobile run that never hands over means the A3 decision
        // path is dead -- fail loudly rather than record a zero.
        if (agg.handovers == 0) {
            std::fprintf(stderr, "FAIL: urban-mobile run completed "
                                 "no handovers\n");
            ++failures;
        }
        // The regression checker skips zero-baseline metrics, so
        // the ping-pong budget is gated here: hysteresis + TTT are
        // tuned to keep bounce-backs under 10% of handovers, and a
        // damping regression should fail the bench, not hide in a
        // skipped comparison.
        if (agg.pingPongs * 10 > agg.handovers) {
            std::fprintf(stderr,
                         "FAIL: %llu of %llu urban-mobile handovers "
                         "are ping-pongs (budget: 10%%)\n",
                         static_cast<unsigned long long>(
                             agg.pingPongs),
                         static_cast<unsigned long long>(
                             agg.handovers));
            ++failures;
        }
    }

    // ---- scheduler A/B: throughput vs fairness -------------------
    bench::banner("scheduler A/B: round_robin vs proportional_fair");
    {
        const std::uint64_t slots = bench::scaled(600, 200);
        std::printf("%-18s %-14s %-9s\n", "scheduler",
                    "goodput Mb/s", "Jain");
        for (const char *kind :
             {"round_robin", "proportional_fair"}) {
            sim::NetworkSpec spec = sim::networkPreset("grid-3x3");
            spec.scheduler.kind = mac::schedulerKindFromName(kind);
            sim::NetworkResult res =
                sim::NetworkSim(spec).run(slots, 4);
            const double goodput = res.aggregateGoodputMbps();
            const double jain = jainIndex(res);
            report.metric(strprintf("goodput_%s", kind), goodput,
                          "Mb/s");
            report.metric(strprintf("jain_%s", kind), jain, "index");
            std::printf("%-18s %-14.3f %-9.3f\n", kind, goodput,
                        jain);
        }
    }

    // ---- fidelity A/B on the multi-cell engine -------------------
    bench::banner("fidelity A/B: full vs analytic (2x2 grid)");
    {
        sim::NetworkSpec spec = sim::networkPreset("grid-3x3");
        spec.numUsers = 8;
        spec.topology.rows = 2;
        spec.topology.cols = 2;
        const std::uint64_t slots = bench::scaled(240, 60);

        double uslots_full = 0.0;
        double speedup = 0.0;
        for (const auto mode : {sim::FidelityMode::Full,
                                sim::FidelityMode::Analytic}) {
            sim::NetworkSpec s = spec;
            s.fidelity.mode = mode;
            if (mode == sim::FidelityMode::Full)
                s.calibrationFile.clear();
            sim::NetworkSim sim(s);
            const double uslots = userSlotsPerSec(sim, slots, 4);
            const char *name = sim::fidelityModeName(mode);
            if (mode == sim::FidelityMode::Full)
                uslots_full = uslots;
            else
                speedup =
                    uslots_full > 0.0 ? uslots / uslots_full : 0.0;
            report.metric(strprintf("uslots_multicell_%s", name),
                          uslots, "user-slots/s");
            std::printf("%-10s %-16.0f user-slots/sec\n", name,
                        uslots);
        }
        report.metric("multicell_speedup_analytic", speedup, "x");
        std::printf("analytic speedup: %.1fx\n", speedup);
        if (speedup < 10.0) {
            std::fprintf(stderr,
                         "FAIL: multi-cell analytic speedup %.2fx "
                         "below the 10x floor\n",
                         speedup);
            ++failures;
        }
    }

    report.writeIfRequested(json_path);
    return failures ? 1 : 0;
}
