/**
 * @file
 * Software channel scaling ablation (section 3): "computing noise
 * values for the AWGN channel dominates our software time, even
 * though the software is already multi-threaded... noise generation
 * alone was sufficient to saturate a quad core system." Measure the
 * AWGN channel's sample throughput against the worker thread count
 * and relate it to the line sample rate (20 Msamples/s).
 */

#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "platform/cosim.hh"

using namespace wilis;
using namespace wilis::bench;

int
main(int argc, char **argv)
{
    const std::string json_path = jsonPathFromArgs(argc, argv);
    JsonReport report("abl_channel_threads");
    report.meta("bench_scale", strprintf("%g", benchScale()));

    banner("AWGN noise-generation throughput vs threads");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("host cores: %u (paper: quad-core Xeon)\n\n", hw);

    double measure_secs = 0.3 * benchScale();
    Table t({"threads", "Msamples/s", "speedup", "% of 20 Msps line "
             "rate"});
    double base = 0.0;
    for (int threads : {1, 2, 4}) {
        li::Config cfg = li::Config::fromString(
            strprintf("snr_db=10,seed=1,threads=%d", threads));
        double msps = platform::measureChannelThroughputMsps(
            "awgn", cfg, measure_secs);
        if (threads == 1)
            base = msps;
        report.metric(strprintf("awgn_msps_t%d", threads), msps,
                      "Msamples/s");
        t.addRow({strprintf("%d", threads), strprintf("%.2f", msps),
                  strprintf("%.2fx", msps / base),
                  strprintf("%.1f%%", 100.0 * msps / 20.0)});
    }
    t.print();

    banner("Rayleigh fading channel (Jakes oscillators + AWGN)");
    for (int threads : {1, 2}) {
        li::Config cfg = li::Config::fromString(strprintf(
            "snr_db=10,doppler_hz=20,seed=1,threads=%d", threads));
        double msps = platform::measureChannelThroughputMsps(
            "rayleigh", cfg, measure_secs);
        report.metric(strprintf("rayleigh_msps_t%d", threads), msps,
                      "Msamples/s");
        std::printf("threads=%d: %.2f Msamples/s\n", threads, msps);
    }
    std::printf("\npaper context: the channel is the co-simulation "
                "bottleneck; this is why WiLIS keeps it in software "
                "but pushes everything else to the FPGA.\n");
    report.writeIfRequested(json_path);
    return 0;
}
