/**
 * @file
 * Demapper quantization ablation (section 4.1): once the SNR and
 * modulation scale factors are dropped, the decoder's *decisions*
 * survive aggressive input quantization (3-8 bits instead of
 * 23-28), because Viterbi-family decisions depend only on relative
 * metric order. BER estimation, however, needs the magnitudes:
 * check how the fitted eq. 5 scale and estimator quality respond to
 * the input width.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/sweep.hh"
#include "softphy/softphy.hh"

using namespace wilis;
using namespace wilis::bench;

int
main()
{
    banner("Demapper soft width ablation (QPSK 1/2, AWGN 3 dB, "
           "BCJR)");

    std::uint64_t packets = scaled(250, 50);
    Table t({"soft width (bits)", "decoded BER", "fitted eq.5 scale",
             "scale x range"});
    for (int w : {3, 4, 5, 6, 8, 10}) {
        sim::TestbenchConfig cfg;
        cfg.rate = 2;
        cfg.rx.decoder = "bcjr";
        cfg.rx.demapper.softWidth = w;
        cfg.channelCfg = li::Config::fromString("snr_db=3,seed=55");
        ErrorStats s = sim::measureBer(
            sim::ScenarioSpec::fromTestbench(cfg, 1704), packets, 0);

        // Calibrate at this width: scale shrinks as the hint range
        // grows, keeping scale x range (the true-LLR span) stable.
        softphy::CalibrationSpec spec;
        spec.rx = cfg.rx;
        spec.packets = packets;
        spec.payloadBits = 1704;
        spec.threads = 0;
        auto cal = softphy::measureLlrCurve(2, 3.0, spec);
        double scale = cal.fitScale();

        t.addRow({strprintf("%d", w), strprintf("%.3e", s.ber()),
                  strprintf("%.5f", scale),
                  strprintf("%.1f", scale * spec.llrMax())});
    }
    t.print();
    std::printf("\npaper: decode BER is already stable at 3-8 bit "
                "inputs (the decisions need only relative order); "
                "the estimator's scale must be recalibrated per "
                "width because magnitudes change.\n");
    return 0;
}
